// Package serve turns the batch multisearch machinery into a query-serving
// subsystem: a long-lived mesh holding built search structures — one per
// enabled query Kind: the dict (a,b)-tree, the Kirkpatrick point-location
// DAG, the interval rank trees, the xy-shadow wedge tree and the DK
// hierarchy — per-kind admission queues accepting lookups from many
// concurrent clients, and a round loop that collects admitted queries into
// per-kind batches and answers each batch with one multisearch round
// (DESIGN.md §3.5, §3.10).
//
// The serving loop is per-kind collectors feeding one executor through a
// one-slot channel: each collector assembles its kind's next batch
// (blocking for the first query, then filling until the batch is full or
// the linger deadline passes) while the executor simulates the current
// round — host-side batch assembly overlaps simulated mesh time, and rounds
// for different kinds interleave on the shared mesh (mixed-workload
// rounds), each under its own step budget. Admission is bounded per kind:
// when a kind's queue is full, Lookup fails fast with ErrOverloaded rather
// than queueing unboundedly. Shutdown closes admission, drains every
// in-flight batch through the normal round path, and only cancels the mesh
// run (via the run-control context seam) if the caller's drain deadline
// expires.
//
// Round failures are not user-visible (DESIGN.md §3.6): a faulted round is
// classified (core.Classify), re-executed with auditing forced on under
// jittered backoff, and — if the mesh keeps failing — the batch is answered
// by the kind's host-side oracle descent, flagged Degraded. A sliding-window
// circuit breaker drives a health state machine (healthy → degraded →
// lame-duck) exposed on /healthz; an open circuit routes batches straight
// to the oracle while periodic audited canary rounds probe the mesh across
// every enabled kind and close the circuit on success.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrOverloaded is returned by Lookup when the admission queue is full: the
// client should back off and retry. Typed so load generators and HTTP
// handlers can distinguish overload (retryable, 429) from closure.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrClosed is returned by Lookup once Shutdown has begun.
var ErrClosed = errors.New("serve: server closed")

// ErrCircuitOpen is returned (only with DisableOracle) for lookups arriving
// while the circuit is open: the mesh path is distrusted and this instance
// has no oracle rung of its own. The fleet layer treats it as a failover
// trigger — re-dispatch to a healthy replica, then the fleet-level oracle.
var ErrCircuitOpen = errors.New("serve: circuit open, mesh path unavailable")

// ErrKindNotServed is returned by LookupKind for a kind this instance was
// not configured to serve (HTTP surfaces map it to 400).
var ErrKindNotServed = errors.New("serve: kind not served by this instance")

// ErrBudgetExhausted is returned when a lookup's remaining deadline budget
// is smaller than the expected time a round needs to answer it: the work is
// doomed — by the time a batch lingered and a round ran, the client would be
// gone — so it is shed before burning mesh time (DESIGN.md §3.11). Typed so
// the fleet treats it as a failover trigger (a faster replica may still make
// the deadline) and the HTTP surface maps it to 504.
var ErrBudgetExhausted = errors.New("serve: deadline budget exhausted before a round could answer")

// Config configures a Server. The zero value of every field has a usable
// default except Side, which must be a positive power of two.
type Config struct {
	// Side is the mesh side length √n; required, power of two.
	Side int
	// Keys is the dictionary key set. Nil defaults to n/4 odd keys
	// 1, 3, 5, …, so even needles miss and odd needles below the range hit.
	Keys []int64
	// A, B select the (a,b)-tree arity; 0,0 defaults to a 2-3 tree.
	A, B int
	// Kinds lists the extra query kinds to serve besides membership, which
	// is always enabled. Nil serves membership only — the pre-kind behaviour.
	// Each kind's structure is built deterministically from (Side, Keys) and
	// loaded onto the shared mesh with its own core.Instance registers.
	Kinds []Kind
	// Model selects the mesh cost model (default CostCounted).
	Model mesh.CostModel
	// MaxBatch caps the queries per multisearch round. 0 defaults to n,
	// one query per processor; larger values are clamped to n. Kinds that
	// expand one request into several mesh queries divide this cap.
	MaxBatch int
	// QueueDepth bounds each kind's admission queue. 0 defaults to
	// 4×MaxBatch.
	QueueDepth int
	// Linger is how long a collector waits to fill a batch after its
	// first query arrives. ≤ 0 means no waiting: a round starts with
	// whatever is already queued.
	Linger time.Duration
	// Budget is the per-round step budget (the clock resets every round);
	// a round that exceeds it fails with a *mesh.BudgetExceededError
	// delivered to every query of the batch. 0 = unlimited.
	Budget int64
	// KindBudgets overrides Budget per kind (per-kind step budgets for
	// mixed-workload rounds); kinds absent from the map use Budget.
	KindBudgets map[Kind]int64
	// Tracer, when set, records one traced run per round — including every
	// retry re-execution and canary probe, each tagged in its run label
	// (retention is bounded by RetainRuns) — and feeds the /metrics live
	// snapshot.
	Tracer *trace.Tracer
	// RetainRuns bounds the tracer's retained runs (default 64).
	RetainRuns int
	// Parallelism bounds the simulator's goroutines (default GOMAXPROCS).
	Parallelism int

	// Audit enables audit mode on every round, not only on retries. Under
	// fault injection this is what guarantees zero wrong answers: a fault
	// trips the audit and the round is retried or degraded instead of
	// silently corrupting results.
	Audit bool
	// Injector installs a fault injector on the serving mesh (chaos
	// testing; see internal/faults). Nil disables injection.
	Injector mesh.Injector
	// MaxRetries is how many audited re-executions a failed round gets
	// before its batch falls back to the host oracle. 0 defaults to 3;
	// negative means no retries.
	MaxRetries int
	// RetryBackoff is the base of the jittered exponential backoff slept
	// between attempts (0 defaults to Backoff's 200µs base).
	RetryBackoff time.Duration
	// BackoffSeed seeds the retry ladder's backoff jitter so chaos runs are
	// reproducible end-to-end: with the fault injector seeded but the backoff
	// drawing from the process-global rand, two identical chaos runs sleep
	// differently between retries. 0 keeps the global source (the default).
	BackoffSeed int64
	// DisableDegrade turns off the oracle fallback and the circuit breaker:
	// a round that exhausts its retries delivers the typed fault to every
	// query of the batch (the pre-recovery behaviour). Diagnostics and
	// tests; production serving wants the default.
	DisableDegrade bool
	// DisableOracle keeps the whole recovery ladder — retries, breaker,
	// health machine, canaries — but removes only the final oracle rung:
	// an exhausted batch delivers its typed fault, and a circuit-open
	// instance fails lookups fast with ErrCircuitOpen instead of answering
	// from the host oracle. This is how an instance runs inside a fleet,
	// where the ladder continues above it (failover to a healthy replica
	// before the fleet-level oracle); standalone serving wants the default.
	DisableOracle bool
	// BreakerWindow is the number of recent mesh rounds in the circuit
	// breaker's sliding window (0 defaults to 16).
	BreakerWindow int
	// BreakerThreshold is the windowed first-attempt failure rate at or
	// above which the circuit opens (0 defaults to 0.5; clamped to (0,1]).
	BreakerThreshold float64
	// CanaryInterval is how often an open circuit probes the mesh with an
	// audited, oracle-checked canary round (0 defaults to 50ms; negative
	// disables canaries — the circuit then only closes by hand, for tests).
	CanaryInterval time.Duration

	// Obs installs the wall-clock observability layer (DESIGN.md §3.9):
	// every Lookup gets a per-stage traced ReqTrace, stage histograms feed
	// the Prometheus exposition, and completed traces are retained for
	// /debug/traces. Nil (the default) disables all of it at the cost of one
	// pointer check per stage boundary — the mesh.Tracer/Injector pattern.
	// An instance inside a fleet shares the fleet's Observer, so its stage
	// marks land on the trace the fleet began. An Observer built with
	// obs.Config.Classes = KindNames() splits stage histograms by kind.
	Obs *obs.Observer
}

// Result is the answer to one lookup.
type Result struct {
	Kind    Kind  `json:"kind"`
	Needle  int64 `json:"needle"`
	Found   bool  `json:"found"`
	LeafKey int64 `json:"leaf_key"` // key of the reached leaf (= Value)
	// Value is the kind's primary answer: leaf key (membership), triangle
	// index (pointloc), intersection count (interval), wedge index
	// (linepoly), extreme vertex index (tangent).
	Value int64 `json:"value"`
	// Aux is the kind's secondary answer (the tangent plane offset d·v).
	Aux   int64 `json:"aux,omitempty"`
	Steps int32 `json:"steps"` // search-path length of this query
	Round int64 `json:"round"` // serving round that answered it
	// Degraded marks an answer produced by the host-side oracle instead of
	// a mesh round: correct, but unaccounted in simulated mesh steps.
	Degraded bool `json:"degraded,omitempty"`
}

// KindStats is the per-kind slice of the serving counters.
type KindStats struct {
	Kind     string         `json:"kind"`
	Served   int64          `json:"served"`
	Degraded int64          `json:"degraded"`
	Rounds   int64          `json:"rounds"`
	SimSteps int64          `json:"sim_steps"`
	Latency  LatencySummary `json:"latency"`
}

// Stats is a point-in-time snapshot of the serving counters. Served counts
// every successfully answered lookup, mesh-served and degraded alike;
// Degraded is the oracle-answered subset.
type Stats struct {
	Accepted   int64 `json:"accepted"`    // lookups admitted to the queue
	Rejected   int64 `json:"rejected"`    // lookups refused with ErrOverloaded
	Served     int64 `json:"served"`      // lookups answered successfully
	Failed     int64 `json:"failed"`      // lookups answered with a round error
	Rounds     int64 `json:"rounds"`      // serving rounds (batches) processed
	SimSteps   int64 `json:"sim_steps"`   // simulated mesh steps across all rounds
	LastBatch  int64 `json:"last_batch"`  // size of the most recent batch
	PeakBatch  int64 `json:"peak_batch"`  // largest batch so far
	StepBudget int64 `json:"step_budget"` // configured per-round budget (0 = unlimited)

	// BudgetShed counts lookups refused (at admission) or failed (in the
	// retry ladder) with ErrBudgetExhausted: doomed work shed before a mesh
	// round was burned on it (DESIGN.md §3.11).
	BudgetShed int64 `json:"budget_shed"`

	// Recovery accounting (DESIGN.md §3.6).
	Retries        int64  `json:"retries"`         // audited re-executions of failed rounds
	Recovered      int64  `json:"recovered"`       // rounds that failed, then succeeded on a retry
	Degraded       int64  `json:"degraded"`        // lookups answered by the host oracle
	DegradedRounds int64  `json:"degraded_rounds"` // batches that fell back to the oracle
	CircuitOpens   int64  `json:"circuit_opens"`   // healthy → degraded transitions
	CircuitCloses  int64  `json:"circuit_closes"`  // degraded → healthy transitions
	CanaryRounds   int64  `json:"canary_rounds"`   // audited canary probes executed
	CanaryFails    int64  `json:"canary_fails"`    // canary probes that failed
	FaultsAudit    int64  `json:"faults_audit"`    // round attempts failed by fault class
	FaultsBudget   int64  `json:"faults_budget"`
	FaultsCanceled int64  `json:"faults_canceled"`
	FaultsPanic    int64  `json:"faults_panic"`
	FaultsOther    int64  `json:"faults_other"`
	Health         string `json:"health"` // healthy | degraded | lame-duck

	// Latency summarizes the answered-lookup latency histogram (admission to
	// response, mesh-served and degraded alike) so /metrics exposes serving
	// percentiles without any per-query allocation on the hot path.
	Latency LatencySummary `json:"latency"`
	// LatencyMesh / LatencyDegraded split the answered-lookup latency by
	// outcome, so the oracle fast path (no simulated round) cannot pollute
	// the mesh-served p99 or vice versa. Latency stays as the combined view
	// for continuity with PR 6 dashboards.
	LatencyMesh     LatencySummary `json:"latency_mesh"`
	LatencyDegraded LatencySummary `json:"latency_degraded"`

	// Kinds splits the served/degraded/round counters and latency by query
	// kind, in enabled-kind order (DESIGN.md §3.10).
	Kinds []KindStats `json:"kinds,omitempty"`
}

type request struct {
	args Args
	resp chan response
	// deadline is the client context's deadline (zero when it has none). It
	// rides the request through the pipeline so the collector can cut linger
	// short and the retry ladder can shed a batch no deadline can survive.
	deadline time.Time
	// tr is the request's wall-clock trace (nil when observability is off).
	// Ownership moves with the request along the pipeline's channel handoffs
	// — Lookup → queue → collector → batches → executor → resp → Lookup —
	// so stage marks need no locks.
	tr *obs.ReqTrace
}

type response struct {
	res Result
	err error
}

// kindRuntime is one enabled kind's serving state: its structure, its
// mesh-resident registers, its admission queue and collector, its step
// budget and its counters. The executor multiplexes rounds across the
// runtimes on the one shared mesh.
type kindRuntime struct {
	kind     Kind
	st       Structure
	in       *core.Instance
	queue    chan request
	budget   int64
	maxBatch int // requests per round: Config.MaxBatch / PerRequest

	rounds, served, degraded, simSteps atomic.Int64
	lat                                Histogram
	// stepsEWMA tracks recent mesh steps per round of this kind (EWMA ×256
	// fixed-point), the steps half of the expected-round-time product.
	stepsEWMA atomic.Int64
}

// kindBatch is one collected batch annotated with its kind runtime.
type kindBatch struct {
	kr   *kindRuntime
	reqs []request
}

// Instance owns one mesh with the built structures of its enabled kinds and
// serves batched lookups against them: the per-kind collectors, the shared
// executor, the recovery ladder, the breaker state, and the serving
// counters — the unit internal/fleet replicates and routes between. Safe
// for concurrent use.
type Instance struct {
	cfg      Config
	m        *mesh.Mesh
	ss       *StructureSet
	bt       *dict.BTree
	kinds    []Kind
	kr       [NumKinds]*kindRuntime
	maxBatch int

	batches chan kindBatch
	runCtx  context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	mu     sync.RWMutex // guards closed against Lookup's queue send
	closed bool

	accepted, rejected, served, failed atomic.Int64
	budgetShed                         atomic.Int64
	rounds, simSteps                   atomic.Int64
	lastBatch, peakBatch               atomic.Int64
	// nsPerStep is the observed steps-to-wall-clock ratio (float64 bits),
	// an EWMA over mesh rounds. With the kind's step budget (Theorem 2's
	// O(√n) bound) it predicts round latency: expected ≈ steps × ns/step.
	nsPerStep   atomic.Uint64
	lat         Histogram // answered-lookup latency, admission → response
	latMesh     Histogram // mesh-answered subset
	latDegraded Histogram // oracle-answered subset
	obs         *obs.Observer

	// Recovery state (DESIGN.md §3.6). maxRetries/backoff/canaryEvery are
	// the resolved Config knobs; brk and lastCanary are owned by the
	// executor goroutine; circuitOpen mirrors brk's verdict for readers
	// (Health, /healthz) and lameduck is set once by Shutdown. nudge wakes
	// the executor for idle canaries when the circuit is open.
	maxRetries  int
	backoff     Backoff
	canaryEvery time.Duration
	brk         *breaker
	lastCanary  time.Time
	nudge       chan struct{}
	circuitOpen atomic.Bool
	lameduck    atomic.Bool

	retries, recovered           atomic.Int64
	degraded, degradedRounds     atomic.Int64
	circuitOpens, circuitCloses  atomic.Int64
	canaryRounds, canaryFailures atomic.Int64
	faults                       [core.FaultOther + 1]atomic.Int64
}

// Server is the historical name for a standalone Instance: one mesh, one
// structure set, one recovery ladder. A fleet is N Instances behind a
// router (internal/fleet); a Server is the degenerate one-replica fleet.
type Server = Instance

// New builds the enabled kinds' structures, loads them onto a fresh mesh,
// and starts the serving loop. The returned instance answers Lookups until
// Shutdown.
func New(cfg Config) (*Instance, error) {
	if cfg.Side <= 0 || cfg.Side&(cfg.Side-1) != 0 {
		return nil, fmt.Errorf("serve: side must be a positive power of two, got %d", cfg.Side)
	}
	n := cfg.Side * cfg.Side
	keys := cfg.Keys
	if keys == nil {
		keys = make([]int64, n/4)
		for i := range keys {
			keys[i] = int64(2*i + 1)
		}
	}
	a, b := cfg.A, cfg.B
	if a == 0 && b == 0 {
		a, b = 2, 3
	}
	ss, err := BuildStructures(cfg.Side, keys, a, b, cfg.Kinds)
	if err != nil {
		return nil, err
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 || maxBatch > n {
		maxBatch = n
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * maxBatch
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := []mesh.Option{
		mesh.WithCostModel(cfg.Model),
		mesh.WithBudget(cfg.Budget),
		mesh.WithContext(ctx),
	}
	if cfg.Audit {
		opts = append(opts, mesh.WithAudit())
	}
	if cfg.Tracer != nil {
		retain := cfg.RetainRuns
		if retain <= 0 {
			retain = 64
		}
		cfg.Tracer.SetRetain(retain)
		opts = append(opts, mesh.WithTracer(cfg.Tracer))
	}
	if cfg.Parallelism > 0 {
		opts = append(opts, mesh.WithParallelism(cfg.Parallelism))
	}
	m := mesh.New(cfg.Side, opts...)

	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	window := cfg.BreakerWindow
	if window <= 0 {
		window = 16
	}
	threshold := cfg.BreakerThreshold
	if threshold <= 0 || threshold > 1 {
		threshold = 0.5
	}
	canaryEvery := cfg.CanaryInterval
	if canaryEvery == 0 {
		canaryEvery = 50 * time.Millisecond
	}
	backoff := Backoff{Base: cfg.RetryBackoff}
	if cfg.BackoffSeed != 0 {
		backoff.Jitter = SeededJitter(cfg.BackoffSeed)
	}

	s := &Instance{
		cfg:         cfg,
		m:           m,
		ss:          ss,
		bt:          ss.Membership(),
		kinds:       ss.Kinds(),
		maxBatch:    maxBatch,
		batches:     make(chan kindBatch, 1),
		runCtx:      ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		maxRetries:  maxRetries,
		backoff:     backoff,
		canaryEvery: canaryEvery,
		brk:         newBreaker(window, threshold),
		nudge:       make(chan struct{}, 1),
		obs:         cfg.Obs,
	}
	for _, k := range s.kinds {
		st := ss.Get(k)
		per := max(1, st.PerRequest())
		kr := &kindRuntime{
			kind:     k,
			st:       st,
			in:       core.NewInstance(m, st.Graph(), nil, st.Successor()),
			queue:    make(chan request, depth),
			budget:   cfg.Budget,
			maxBatch: max(1, maxBatch/per),
		}
		if kb, ok := cfg.KindBudgets[k]; ok {
			kr.budget = kb
		}
		s.kr[k] = kr
	}
	// The injector goes in only after every structure is resident: a fault
	// injected during host-side construction would surface outside the
	// core.Run containment boundary and crash the process instead of
	// entering the recovery ladder. The serving goroutines have not started,
	// so the mesh is quiescent as SetInjector requires.
	if cfg.Injector != nil {
		m.SetInjector(cfg.Injector)
	}
	var collectors sync.WaitGroup
	for _, k := range s.kinds {
		collectors.Add(1)
		kr := s.kr[k]
		go func() {
			defer collectors.Done()
			s.collect(kr)
		}()
	}
	go func() {
		collectors.Wait()
		close(s.batches)
	}()
	go s.execute()
	if canaryEvery > 0 && !cfg.DisableDegrade {
		go s.canaryTicker()
	}
	return s, nil
}

// Health reports the server's current admission-facing state.
func (s *Instance) Health() Health {
	switch {
	case s.lameduck.Load():
		return LameDuck
	case s.circuitOpen.Load():
		return Degraded
	default:
		return Healthy
	}
}

// Tree exposes the served dictionary (for oracle checks in tests and the
// load generator).
func (s *Instance) Tree() *dict.BTree { return s.bt }

// Structures exposes the kind registry (fleet oracle rung, load-generator
// oracle checks, tests).
func (s *Instance) Structures() *StructureSet { return s.ss }

// Kinds lists the kinds this instance serves, in registry order.
func (s *Instance) Kinds() []Kind { return append([]Kind(nil), s.kinds...) }

// MaxBatch reports the effective per-round batch cap (membership; kinds
// with PerRequest > 1 divide it).
func (s *Instance) MaxBatch() int { return s.maxBatch }

// Side reports the mesh side length.
func (s *Instance) Side() int { return s.cfg.Side }

// QueueLen is the current admission backlog summed across kinds — the load
// signal the fleet's least-loaded routing policy reads. A point-in-time
// sample.
func (s *Instance) QueueLen() int {
	total := 0
	for _, k := range s.kinds {
		total += len(s.kr[k].queue)
	}
	return total
}

// QueueCap is the admission capacity summed across kinds.
func (s *Instance) QueueCap() int {
	total := 0
	for _, k := range s.kinds {
		total += cap(s.kr[k].queue)
	}
	return total
}

// RetryAfterHint estimates how long a rejected (or routed-around) client
// should wait before retrying this instance: the time for the current
// admission backlog to drain, at one fill window per queued round, with a
// floor of one window — or the canary interval while the circuit is open,
// when recovery is canary-bound rather than queue-bound. The fleet's
// backpressure signal takes the minimum of this hint across healthy
// replicas, so a 429 reflects the soonest any replica could accept work.
func (s *Instance) RetryAfterHint() time.Duration {
	per := s.cfg.Linger
	if per <= 0 {
		per = time.Millisecond
	}
	hint := time.Duration(s.QueueLen()/s.maxBatch+1) * per
	if s.circuitOpen.Load() && s.canaryEvery > hint {
		hint = s.canaryEvery
	}
	return hint
}

// observeStepRatio feeds one completed mesh attempt into the ns/step EWMA
// and the kind's steps-per-round EWMA (executor goroutine only; readers load
// the atomics). α = 1/4: responsive to a replica turning slow within a few
// rounds, stable against one outlier round.
func (s *Instance) observeStepRatio(kr *kindRuntime, steps int64, wall time.Duration) {
	if steps <= 0 || wall <= 0 {
		return
	}
	ratio := float64(wall) / float64(steps)
	if old := math.Float64frombits(s.nsPerStep.Load()); old > 0 {
		ratio = old + (ratio-old)/4
	}
	s.nsPerStep.Store(math.Float64bits(ratio))
	scaled := steps * 256
	if old := kr.stepsEWMA.Load(); old > 0 {
		scaled = old + (scaled-old)/4
	}
	kr.stepsEWMA.Store(scaled)
}

// expectedRoundDur predicts one mesh round's wall-clock cost for the kind:
// expected steps × observed ns/step. The steps estimate is the kind's recent
// per-round EWMA, capped by its configured step budget (the Theorem 2 O(√n)
// bound — a round provably never runs longer, so the prediction never
// exceeds what the budget enforces); before any round has been observed the
// prediction is 0, meaning "unknown: never shed".
func (s *Instance) expectedRoundDur(kr *kindRuntime) time.Duration {
	ratio := math.Float64frombits(s.nsPerStep.Load())
	if ratio <= 0 {
		return 0
	}
	steps := kr.stepsEWMA.Load() / 256
	if kr.budget > 0 && (steps <= 0 || steps > kr.budget) {
		steps = kr.budget
	}
	if steps <= 0 {
		return 0
	}
	return time.Duration(float64(steps) * ratio)
}

// ExpectedRoundTime predicts admission-to-answer time for one lookup of the
// kind under current conditions: one full linger window plus one expected
// mesh round (DESIGN.md §3.11). This is the budget-check threshold at every
// rung — admission here, the pre-dispatch check in the fleet's failover
// ladder — and it is per-instance: a slow replica predicts honestly longer
// times than its healthy peers, which is exactly what lets the fleet route
// a tight-deadline lookup to a replica that can still make it. 0 = unknown
// (no round observed yet); unknown never sheds.
func (s *Instance) ExpectedRoundTime(kind Kind) time.Duration {
	if kind >= NumKinds || s.kr[kind] == nil {
		return 0
	}
	round := s.expectedRoundDur(s.kr[kind])
	if round <= 0 {
		return 0
	}
	if s.cfg.Linger > 0 {
		round += s.cfg.Linger
	}
	return round
}

// Lookup submits one membership query and blocks until its round completes,
// ctx is done, or the server refuses it (ErrOverloaded when the admission
// queue is full, ErrClosed after Shutdown).
func (s *Instance) Lookup(ctx context.Context, needle int64) (Result, error) {
	return s.LookupKind(ctx, KindMembership, Args{needle})
}

// LookupKind submits one query of the given kind and blocks until its round
// completes, ctx is done, or the server refuses it (ErrOverloaded when the
// kind's admission queue is full, ErrClosed after Shutdown,
// ErrKindNotServed for a kind this instance does not serve).
func (s *Instance) LookupKind(ctx context.Context, kind Kind, args Args) (Result, error) {
	start := time.Now()
	if kind >= NumKinds || s.kr[kind] == nil {
		return Result{}, ErrKindNotServed
	}
	kr := s.kr[kind]
	// Deadline-budget admission rung (DESIGN.md §3.11): a lookup whose
	// remaining budget cannot cover one linger window plus one expected
	// round is doomed — shed it now instead of letting it queue, linger,
	// and expire mid-round. No deadline, or no observed rounds yet, skips
	// the check.
	var deadline time.Time
	if dl, ok := ctx.Deadline(); ok {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		deadline = dl
		if need := s.ExpectedRoundTime(kind); need > 0 && time.Until(dl) < need {
			s.budgetShed.Add(1)
			if s.obs != nil {
				if tr := obs.FromContext(ctx); tr == nil {
					tr = s.obs.BeginClass(int(kind), obs.ParentFromContext(ctx), args[0], start)
					s.obs.Finish(tr, obs.OutcomeError, ErrBudgetExhausted)
				}
			}
			return Result{}, ErrBudgetExhausted
		}
	}
	// Observability (nil s.obs skips everything, even the ctx lookups): the
	// trace either arrives on ctx — the fleet began it and will finish it —
	// or is begun here, in which case this call finishes it ("creator
	// finalizes": exactly one goroutine may seal a trace).
	var tr *obs.ReqTrace
	created := false
	if s.obs != nil {
		if tr = obs.FromContext(ctx); tr == nil {
			tr = s.obs.BeginClass(int(kind), obs.ParentFromContext(ctx), args[0], start)
			created = true
		}
	}
	req := request{args: args, resp: make(chan response, 1), deadline: deadline, tr: tr}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		if created {
			s.obs.Finish(tr, obs.OutcomeClosed, ErrClosed)
		}
		return Result{}, ErrClosed
	}
	// The admit mark must land before the queue send: once the request is
	// enqueued the collector owns the trace, and a mark from this goroutine
	// would race the collector's queue-wait mark.
	if tr != nil {
		tr.Mark(obs.StageAdmit)
	}
	// Non-blocking admission under the read lock: Shutdown takes the write
	// lock before closing the queue, so this send cannot race the close.
	select {
	case kr.queue <- req:
		s.mu.RUnlock()
		s.accepted.Add(1)
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		if created {
			s.obs.Finish(tr, obs.OutcomeRejected, ErrOverloaded)
		}
		return Result{}, ErrOverloaded
	}
	select {
	case r := <-req.resp:
		// Latency is admission → response, mesh-served and degraded alike;
		// rejected and abandoned lookups never reach a round, so they do
		// not pollute the serving histogram.
		e2e := time.Since(start)
		s.lat.Observe(e2e)
		kr.lat.Observe(e2e)
		if r.err == nil {
			if r.res.Degraded {
				s.latDegraded.Observe(e2e)
			} else {
				s.latMesh.Observe(e2e)
			}
		}
		if created {
			s.obs.Finish(tr, lookupOutcome(r), r.err)
		}
		return r.res, r.err
	case <-ctx.Done():
		// The round still answers into the buffered resp channel; the
		// abandoned reply is garbage-collected with it. The trace stays with
		// the request — the executor may still be marking stages into it —
		// so it is counted abandoned, never finished or retained.
		if created {
			s.obs.Abandon(tr)
		}
		return Result{}, ctx.Err()
	}
}

// lookupOutcome classifies a delivered response for the trace record.
func lookupOutcome(r response) obs.Outcome {
	switch {
	case r.err != nil:
		return obs.OutcomeError
	case r.res.Degraded:
		return obs.OutcomeDegraded
	default:
		return obs.OutcomeMesh
	}
}

// LatencySnapshot exposes the raw latency histogram (the load generator and
// tests compute their own quantiles; /metrics uses the Stats summary).
func (s *Instance) LatencySnapshot() HistSnapshot { return s.lat.Snapshot() }

// LatencyByOutcome exposes the outcome-split latency histograms (mesh- vs
// oracle-answered), for the Prometheus exposition and the fleet aggregator.
func (s *Instance) LatencyByOutcome() (mesh, degraded HistSnapshot) {
	return s.latMesh.Snapshot(), s.latDegraded.Snapshot()
}

// LatencyByKind exposes one kind's answered-lookup latency histogram (zero
// snapshot for kinds not served).
func (s *Instance) LatencyByKind(k Kind) HistSnapshot {
	if k >= NumKinds || s.kr[k] == nil {
		return HistSnapshot{}
	}
	return s.kr[k].lat.Snapshot()
}

// Observer exposes the installed observability hub (nil when disabled).
func (s *Instance) Observer() *obs.Observer { return s.obs }

// collect is one kind's admission stage: it blocks for a round's first
// query, then fills the batch until the kind's batch cap or the linger
// deadline, and hands it to the executor. The one-slot batches channel lets
// the next batch assemble while the current round simulates; batches of
// different kinds interleave in arrival order.
func (s *Instance) collect(kr *kindRuntime) {
	for {
		first, ok := <-kr.queue
		if !ok {
			return
		}
		if first.tr != nil {
			first.tr.Mark(obs.StageQueue)
		}
		batch := append(make([]request, 0, kr.maxBatch), first)
		// Deadline-budget linger rung (DESIGN.md §3.11): lingering is spending
		// the first request's budget, so cap the fill window at what its
		// deadline can afford after one expected round. A batch whose opener
		// has no time to linger starts its round immediately.
		linger := s.cfg.Linger
		if linger > 0 && !first.deadline.IsZero() {
			if afford := time.Until(first.deadline) - s.expectedRoundDur(kr); afford < linger {
				linger = afford
			}
		}
		if linger > 0 {
			timer := time.NewTimer(linger)
		fill:
			for len(batch) < kr.maxBatch {
				select {
				case r, ok := <-kr.queue:
					if !ok {
						break fill
					}
					if r.tr != nil {
						r.tr.Mark(obs.StageQueue)
					}
					batch = append(batch, r)
				case <-timer.C:
					break fill
				}
			}
			timer.Stop()
		} else {
		greedy:
			for len(batch) < kr.maxBatch {
				select {
				case r, ok := <-kr.queue:
					if !ok {
						break greedy
					}
					if r.tr != nil {
						r.tr.Mark(obs.StageQueue)
					}
					batch = append(batch, r)
				default:
					break greedy
				}
			}
		}
		s.batches <- kindBatch{kr: kr, reqs: batch}
	}
}

// execute serves batches until every collector drains, waking for idle
// canary probes while the circuit is open. It is the only goroutine that
// touches the mesh, which is what makes the recovery ladder's audit and
// budget toggling and breaker bookkeeping lock-free.
func (s *Instance) execute() {
	defer close(s.done)
	for {
		select {
		case b, ok := <-s.batches:
			if !ok {
				return
			}
			s.serveBatch(b.kr, b.reqs)
		case <-s.nudge:
			if s.circuitOpen.Load() && !s.lameduck.Load() && s.canaryDue() {
				s.runCanary()
			}
		}
	}
}

// canaryTicker nudges the executor every CanaryInterval while the circuit
// is open, so a degraded server recovers even with no traffic arriving.
func (s *Instance) canaryTicker() {
	t := time.NewTicker(s.canaryEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.circuitOpen.Load() && !s.lameduck.Load() {
				select {
				case s.nudge <- struct{}{}:
				default:
				}
			}
		case <-s.done:
			return
		}
	}
}

// Shutdown stops admission and drains: queued and in-flight batches are
// answered through the normal round path. If ctx expires first, the mesh
// run is cancelled through the run-control seam — the in-flight round (and
// any still-queued batch) fails fast with a *mesh.CanceledError delivered
// to its clients — and Shutdown returns ctx.Err(). Safe to call once.
func (s *Instance) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.lameduck.Store(true) // /healthz flips to 503 while the drain runs
	for _, k := range s.kinds {
		close(s.kr[k].queue)
	}
	s.mu.Unlock()

	select {
	case <-s.done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-s.done
		return ctx.Err()
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Instance) Stats() Stats {
	st := Stats{
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Served:     s.served.Load(),
		Failed:     s.failed.Load(),
		BudgetShed: s.budgetShed.Load(),
		Rounds:     s.rounds.Load(),
		SimSteps:   s.simSteps.Load(),
		LastBatch:  s.lastBatch.Load(),
		PeakBatch:  s.peakBatch.Load(),
		StepBudget: s.cfg.Budget,

		Retries:         s.retries.Load(),
		Recovered:       s.recovered.Load(),
		Degraded:        s.degraded.Load(),
		DegradedRounds:  s.degradedRounds.Load(),
		CircuitOpens:    s.circuitOpens.Load(),
		CircuitCloses:   s.circuitCloses.Load(),
		CanaryRounds:    s.canaryRounds.Load(),
		CanaryFails:     s.canaryFailures.Load(),
		FaultsAudit:     s.faults[core.FaultAudit].Load(),
		FaultsBudget:    s.faults[core.FaultBudget].Load(),
		FaultsCanceled:  s.faults[core.FaultCanceled].Load(),
		FaultsPanic:     s.faults[core.FaultPanic].Load(),
		FaultsOther:     s.faults[core.FaultOther].Load(),
		Health:          s.Health().String(),
		Latency:         s.lat.Snapshot().Summary(),
		LatencyMesh:     s.latMesh.Snapshot().Summary(),
		LatencyDegraded: s.latDegraded.Snapshot().Summary(),
	}
	for _, k := range s.kinds {
		kr := s.kr[k]
		st.Kinds = append(st.Kinds, KindStats{
			Kind:     k.String(),
			Served:   kr.served.Load(),
			Degraded: kr.degraded.Load(),
			Rounds:   kr.rounds.Load(),
			SimSteps: kr.simSteps.Load(),
			Latency:  kr.lat.Snapshot().Summary(),
		})
	}
	return st
}
