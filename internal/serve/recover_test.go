package serve

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mesh"
)

// gateInjector injects a lying comparator into every sort while broken —
// a switchable mesh failure for driving the circuit breaker through its
// transitions.
type gateInjector struct{ broken atomic.Bool }

func (g *gateInjector) SortLie(_ string, items int) int64 {
	if g.broken.Load() && items >= 2 {
		return 1
	}
	return 0
}
func (g *gateInjector) CorruptCell(string, int) (int, int, bool) { return 0, 0, false }
func (g *gateInjector) DropReply(int) (int, bool)                { return 0, false }
func (g *gateInjector) DuplicateReply(int) (int, int, bool)      { return 0, 0, false }

// panicInjector panics at its n-th consultation (counting every seam),
// modelling a simulator bug surfacing mid-operation. It only counts once
// armed, so the chargeless register initialization in serve.New — which
// runs outside the core.Run containment boundary — is not a target.
type panicInjector struct {
	armed atomic.Bool
	mu    sync.Mutex
	calls int
	at    int
}

func (p *panicInjector) tick() {
	if !p.armed.Load() {
		return
	}
	p.mu.Lock()
	calls := p.calls
	p.calls++
	p.mu.Unlock()
	if calls == p.at {
		panic("injected simulator bug")
	}
}
func (p *panicInjector) SortLie(string, int) int64 { p.tick(); return 0 }
func (p *panicInjector) CorruptCell(string, int) (int, int, bool) {
	p.tick()
	return 0, 0, false
}
func (p *panicInjector) DropReply(int) (int, bool) { p.tick(); return 0, false }
func (p *panicInjector) DuplicateReply(int) (int, int, bool) {
	p.tick()
	return 0, 0, false
}

// TestTypedFaultsCrossRetryBoundary proves errors.As through serve.Lookup
// results still reaches the typed mesh faults once the retry ladder sits in
// between (DisableDegrade keeps the terminal error user-visible).
func TestTypedFaultsCrossRetryBoundary(t *testing.T) {
	t.Run("budget", func(t *testing.T) {
		s := newTestServer(t, Config{Side: 8, Budget: 3, DisableDegrade: true})
		_, err := s.Lookup(context.Background(), 1)
		var be *mesh.BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("lookup error %v does not unwrap to *mesh.BudgetExceededError", err)
		}
		st := s.Stats()
		if st.FaultsBudget == 0 {
			t.Fatalf("budget fault not classified: %+v", st)
		}
		if st.Retries != 0 {
			t.Fatalf("budget overrun was retried %d times; it is deterministic and must not be", st.Retries)
		}
	})

	t.Run("audit", func(t *testing.T) {
		g := &gateInjector{}
		g.broken.Store(true) // every sort lies, every attempt trips the audit
		s := newTestServer(t, Config{
			Side: 8, Audit: true, Injector: g, DisableDegrade: true,
			MaxRetries: 1, RetryBackoff: 10 * time.Microsecond,
		})
		_, err := s.Lookup(context.Background(), 1)
		var ae *mesh.AuditError
		if !errors.As(err, &ae) {
			t.Fatalf("lookup error %v does not unwrap to *mesh.AuditError", err)
		}
		st := s.Stats()
		if st.Retries != 1 {
			t.Fatalf("audit fault retried %d times, want exactly MaxRetries=1", st.Retries)
		}
		if st.FaultsAudit < 2 {
			t.Fatalf("want a classified audit fault per attempt, got %d", st.FaultsAudit)
		}
	})

	t.Run("panic", func(t *testing.T) {
		// A panic's envelope depends on where it fires: inside a RunParallel
		// body it surfaces as *mesh.PanicError, on the root chain as a
		// *core.RunError with the recovered stack. Sweep injection points:
		// every error must classify FaultPanic, and at least one must reach
		// *mesh.PanicError (the parallel regions of Algorithm 2 guarantee
		// consultations there).
		sawPanicError := false
		for _, at := range []int{0, 2, 4, 8, 16, 32, 64, 128} {
			inj := &panicInjector{at: at}
			s := newTestServer(t, Config{
				Side: 8, Injector: inj,
				DisableDegrade: true, MaxRetries: -1, Parallelism: 1,
			})
			inj.armed.Store(true)
			_, err := s.Lookup(context.Background(), 1)
			if err == nil {
				continue // injection point past this round's consultations
			}
			if got := core.Classify(err); got != core.FaultPanic {
				t.Fatalf("at=%d: classified %v, want %v (err: %v)", at, got, core.FaultPanic, err)
			}
			var pe *mesh.PanicError
			if errors.As(err, &pe) {
				sawPanicError = true
			}
			var re *core.RunError
			if !errors.As(err, &re) {
				t.Fatalf("at=%d: error %v lacks the *core.RunError envelope", at, err)
			}
		}
		if !sawPanicError {
			t.Fatal("no injection point surfaced as *mesh.PanicError through Lookup")
		}
	})
}

// TestChaosSortFaultRetriedAndRecovered is the satellite chaos proof: a
// seeded injector corrupts sorts under a live query stream, the audit
// catches every fault, the ladder retries, and every answer is still
// correct against the host oracle — zero wrong answers, zero failed
// queries.
func TestChaosSortFaultRetriedAndRecovered(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 42, PSortLie: 0.2, Limit: 5})
	s := newTestServer(t, Config{
		Side: 8, Audit: true, Injector: inj,
		MaxRetries: 6, RetryBackoff: 20 * time.Microsecond,
		Linger: 200 * time.Microsecond,
	})
	const clients, perClient = 8, 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				needle := int64((c*perClient + i) % 40)
				var res Result
				var err error
				for {
					res, err = s.Lookup(context.Background(), needle)
					if !errors.Is(err, ErrOverloaded) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					errs <- err
					return
				}
				if res.Found != s.Tree().Contains(needle) {
					errs <- errors.New("wrong membership answer under chaos")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if inj.Count() == 0 {
		t.Fatal("chaos injector never fired; the test proved nothing")
	}
	if st.FaultsAudit == 0 {
		t.Fatalf("injected sort faults were not caught by the audit: %+v (injected %d)", st, inj.Count())
	}
	if st.Retries == 0 || st.Recovered == 0 {
		t.Fatalf("no retry/recovery recorded: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("%d queries failed; recovery must make faults invisible: %+v", st.Failed, st)
	}
	if st.Served != clients*perClient {
		t.Fatalf("served %d, want %d", st.Served, clients*perClient)
	}
	t.Logf("injected %d faults → %d retries, %d recovered rounds, %d degraded answers",
		inj.Count(), st.Retries, st.Recovered, st.Degraded)
}

// TestBudgetOverrunDegradesToOracle is the graceful-degradation contract: a
// deterministic fault (per-round budget too small for any round) is never
// user-visible — the batch is answered by the host oracle, flagged
// degraded, and the circuit opens.
func TestBudgetOverrunDegradesToOracle(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Budget: 3, CanaryInterval: -1})
	res, err := s.Lookup(context.Background(), 3)
	if err != nil {
		t.Fatalf("lookup under recovery returned error %v; want degraded answer", err)
	}
	if !res.Degraded {
		t.Fatalf("result not flagged degraded: %+v", res)
	}
	if want := s.Tree().Contains(3); res.Found != want {
		t.Fatalf("degraded answer wrong: found=%v want %v", res.Found, want)
	}
	leaf, _, path := s.Tree().HostLookup(3)
	if res.LeafKey != leaf || res.Steps != path {
		t.Fatalf("degraded answer provenance wrong: %+v (want leaf %d, path %d)", res, leaf, path)
	}
	if s.Health() != Degraded {
		t.Fatalf("terminal round failure left health %v, want %v", s.Health(), Degraded)
	}
	// The open circuit routes the next batch straight to the oracle: no
	// mesh round, still a correct degraded answer.
	res2, err := s.Lookup(context.Background(), 4)
	if err != nil || !res2.Degraded || res2.Found != s.Tree().Contains(4) {
		t.Fatalf("open-circuit lookup: res=%+v err=%v", res2, err)
	}
	st := s.Stats()
	if st.Failed != 0 || st.Degraded < 2 || st.DegradedRounds < 2 {
		t.Fatalf("degraded accounting wrong: %+v", st)
	}
	if st.FaultsBudget == 0 || st.CircuitOpens != 1 {
		t.Fatalf("breaker accounting wrong: %+v", st)
	}
	if st.Health != "degraded" {
		t.Fatalf("stats health %q, want degraded", st.Health)
	}
}

// TestCircuitBreakerOpensAndCanaryCloses drives the full health cycle:
// healthy → (mesh breaks) degraded with oracle answers → (mesh heals) a
// periodic audited canary closes the circuit → healthy mesh serving again,
// with /healthz flipping 200 → 503 → 200.
func TestCircuitBreakerOpensAndCanaryCloses(t *testing.T) {
	g := &gateInjector{}
	s := newTestServer(t, Config{
		Side: 8, Audit: true, Injector: g,
		MaxRetries: -1, BreakerWindow: 4,
		CanaryInterval: 2 * time.Millisecond,
		RetryBackoff:   10 * time.Microsecond,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	healthz := func() (int, string) {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Phase 1: healthy mesh serving.
	res, err := s.Lookup(context.Background(), 3)
	if err != nil || res.Degraded {
		t.Fatalf("healthy lookup: res=%+v err=%v", res, err)
	}
	if code, body := healthz(); code != 200 || !strings.Contains(body, "healthy") {
		t.Fatalf("/healthz while healthy → %d %s", code, body)
	}

	// Phase 2: break the mesh. The next round fails terminally (no
	// retries), the circuit opens, and the batch degrades to the oracle.
	g.broken.Store(true)
	res, err = s.Lookup(context.Background(), 5)
	if err != nil || !res.Degraded || res.Found != s.Tree().Contains(5) {
		t.Fatalf("broken-mesh lookup: res=%+v err=%v", res, err)
	}
	if s.Health() != Degraded {
		t.Fatalf("health %v after terminal failure, want %v", s.Health(), Degraded)
	}
	if code, body := healthz(); code != 503 || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz while degraded → %d %s", code, body)
	}
	// Let at least one canary probe the still-broken mesh and fail.
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Lookup(context.Background(), 7); err != nil {
		t.Fatal(err)
	}

	// Phase 3: heal the mesh; a canary must close the circuit without any
	// help from traffic.
	g.broken.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for s.Health() != Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("circuit never closed: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := healthz(); code != 200 {
		t.Fatalf("/healthz after recovery → %d", code)
	}
	res, err = s.Lookup(context.Background(), 3)
	if err != nil || res.Degraded {
		t.Fatalf("post-recovery lookup not mesh-served: res=%+v err=%v", res, err)
	}
	st := s.Stats()
	if st.CircuitOpens == 0 || st.CircuitCloses == 0 {
		t.Fatalf("missing circuit transitions: %+v", st)
	}
	if st.CanaryRounds == 0 || st.CanaryFails == 0 {
		t.Fatalf("canary accounting wrong (want ≥1 probe and ≥1 failed probe): %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("user-visible failures across the whole cycle: %+v", st)
	}
}

// TestShutdownEntersLameDuck pins the terminal health state: once Shutdown
// begins, /healthz reports lame-duck with 503 so load balancers drain away.
func TestShutdownEntersLameDuck(t *testing.T) {
	s, err := New(Config{Side: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Health() != LameDuck {
		t.Fatalf("health after shutdown %v, want %v", s.Health(), LameDuck)
	}
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 503 || !strings.Contains(string(body), "lame-duck") {
		t.Fatalf("/healthz after shutdown → %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 /healthz lacks Retry-After")
	}
}
