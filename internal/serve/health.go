package serve

// Health is the server's admission-facing state, driven by the circuit
// breaker and by Shutdown (DESIGN.md §3.6, §3.11):
//
//	Healthy   — circuit closed; batches run on the mesh (with the retry
//	            ladder behind them).
//	Degraded  — circuit open; batches are answered by the host oracle while
//	            periodic audited canary rounds probe the mesh, closing the
//	            circuit on the first success.
//	LameDuck  — Shutdown has begun; admission is closed and /healthz tells
//	            load balancers to route elsewhere while the drain finishes.
//	Ejected   — the fleet's latency-outlier verdict (DESIGN.md §3.11): the
//	            replica answers correctly and its own breaker is closed —
//	            gray failure — but its EWMA latency score is an outlier
//	            multiple of the fleet median, so routing skips it until
//	            fleet-level canary probes measure it back within bounds.
//	            An instance never reports Ejected about itself: the state
//	            is relative to the fleet's other replicas, so only the
//	            fleet view (fleet.ReplicaView, fleet stats) carries it.
type Health int32

const (
	Healthy Health = iota
	Degraded
	LameDuck
	Ejected
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case LameDuck:
		return "lame-duck"
	case Ejected:
		return "ejected"
	default:
		return "unknown"
	}
}

// breaker is the sliding-window failure-rate circuit breaker. It records
// one outcome per mesh-path batch — true when the first attempt faulted,
// whatever happened afterwards — over a fixed window of recent rounds.
// Owned exclusively by the executor goroutine; no locking (the open flag
// the rest of the server reads is mirrored into Instance.circuitOpen).
type breaker struct {
	window    []bool
	idx       int
	filled    int
	fails     int
	threshold float64
}

func newBreaker(size int, threshold float64) *breaker {
	return &breaker{window: make([]bool, size), threshold: threshold}
}

// record pushes one round outcome and reports whether the windowed failure
// rate now calls for opening the circuit: the window must be full (a cold
// server never opens on its first round) and the rate at or past the
// threshold.
func (b *breaker) record(fail bool) (open bool) {
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = fail
	if fail {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
	return b.filled == len(b.window) &&
		float64(b.fails) >= b.threshold*float64(len(b.window))
}

// reset clears the window — called on every circuit transition so the next
// decision is based only on rounds observed in the new state.
func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
}
