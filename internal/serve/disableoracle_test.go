package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/mesh"
)

// TestDisableOracleSurfacesTypedFaults pins the fleet-facing instance
// contract (DESIGN.md §3.8): with DisableOracle the ladder keeps its
// breaker, health machine and canaries, but a round the mesh cannot serve
// returns its typed fault — never a host-oracle answer — so a fleet can
// fail the lookup over to another replica before anything degrades.
func TestDisableOracleSurfacesTypedFaults(t *testing.T) {
	t.Run("budget overrun fails typed instead of degrading", func(t *testing.T) {
		s := newTestServer(t, Config{Side: 8, Budget: 3, DisableOracle: true})
		_, err := s.Lookup(context.Background(), 1)
		var be *mesh.BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("lookup error %v does not unwrap to *mesh.BudgetExceededError", err)
		}
		st := s.Stats()
		if st.Degraded != 0 || st.DegradedRounds != 0 {
			t.Fatalf("oracle answered despite DisableOracle: %+v", st)
		}
		if st.Failed == 0 {
			t.Fatalf("failed lookup not counted: %+v", st)
		}
	})

	t.Run("open circuit fast-fails and canaries still close it", func(t *testing.T) {
		g := &gateInjector{}
		s := newTestServer(t, Config{
			Side: 8, Audit: true, Injector: g, DisableOracle: true,
			MaxRetries: -1, RetryBackoff: 10 * time.Microsecond,
			CanaryInterval: 2 * time.Millisecond,
		})
		if res, err := s.Lookup(context.Background(), 3); err != nil || res.Degraded {
			t.Fatalf("healthy lookup: res=%+v err=%v", res, err)
		}

		// Break the mesh: the round fails terminally and must surface the
		// audit fault to the caller, not an oracle answer.
		g.broken.Store(true)
		_, err := s.Lookup(context.Background(), 5)
		var ae *mesh.AuditError
		if !errors.As(err, &ae) {
			t.Fatalf("broken-mesh lookup error %v does not unwrap to *mesh.AuditError", err)
		}
		if s.Health() != Degraded {
			t.Fatalf("health %v after terminal failure, want %v", s.Health(), Degraded)
		}
		// With the circuit open, lookups fail fast with the typed sentinel —
		// the signal a fleet dispatcher failovers on without waiting a round.
		if _, err := s.Lookup(context.Background(), 7); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-circuit lookup error %v, want ErrCircuitOpen", err)
		}

		// Heal the mesh: canaries must still run under DisableOracle and
		// close the circuit with no help from traffic.
		g.broken.Store(false)
		deadline := time.Now().Add(5 * time.Second)
		for s.Health() != Healthy {
			if time.Now().After(deadline) {
				t.Fatalf("canaries never closed the circuit: %+v", s.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
		if res, err := s.Lookup(context.Background(), 3); err != nil || res.Degraded || !res.Found {
			t.Fatalf("post-recovery lookup: res=%+v err=%v", res, err)
		}
		st := s.Stats()
		if st.Degraded != 0 {
			t.Fatalf("oracle answered somewhere in the cycle: %+v", st)
		}
		if st.CircuitOpens == 0 || st.CircuitCloses == 0 || st.CanaryRounds == 0 {
			t.Fatalf("breaker/canary machinery idle under DisableOracle: %+v", st)
		}
	})
}
