package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file is the recovery ladder around the round executor (DESIGN.md
// §3.6). Everything here runs on the executor goroutine — the only
// goroutine that touches the mesh — so audit toggling, per-kind budget
// switching, breaker bookkeeping and canary scheduling need no locks; the
// rest of the server observes the outcome through the atomic counters and
// the circuitOpen/lameduck flags.

// serveBatch answers one batch of one kind. Circuit open: probe the mesh
// with a canary if one is due, then either serve normally (canary closed
// the circuit) or answer from the kind's host oracle. Circuit closed: run
// the retry ladder — attempt the round, classify any fault, re-execute with
// auditing forced on under jittered backoff, and degrade to the oracle when
// the mesh keeps failing.
func (s *Instance) serveBatch(kr *kindRuntime, batch []request) {
	round := s.rounds.Add(1)
	kr.rounds.Add(1)
	s.lastBatch.Store(int64(len(batch)))
	if int64(len(batch)) > s.peakBatch.Load() {
		s.peakBatch.Store(int64(len(batch)))
	}
	// One clock read closes the linger span of the whole batch: dequeue →
	// round start, including the wait in the one-slot pipeline channel.
	s.markBatch(batch, obs.StageLinger)

	if s.circuitOpen.Load() {
		if s.canaryDue() {
			s.runCanary()
		}
		if s.circuitOpen.Load() {
			if s.cfg.DisableOracle {
				// No oracle rung on this instance: fail fast with the
				// typed circuit error so the fleet can re-dispatch the
				// lookup to a replica whose mesh is still trusted.
				s.failBatch(batch, ErrCircuitOpen)
				return
			}
			s.degradeBatch(kr, batch, round)
			return
		}
	}

	args := make([]Args, len(batch))
	for i, r := range batch {
		args[i] = r.args
	}
	queries := kr.st.MakeQueries(args)
	var lastErr error
	for attempt := 0; attempt <= s.maxRetries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			s.m.SetAudit(true) // escalate strictness on every re-execution
			ok := s.backoff.Sleep(s.runCtx, attempt-1)
			s.markBatch(batch, obs.StageBackoff)
			if !ok {
				break // server context gone: no point re-executing
			}
		}
		// Deadline-budget retry rung (DESIGN.md §3.11): when no deadline in
		// the batch can survive one more expected round, the attempt would
		// answer nobody — shed the batch with the typed budget error instead
		// of burning the mesh time. Checked before the first attempt too
		// (a batch can expire while waiting in the one-slot pipeline).
		if batchDoomed(batch, s.expectedRoundDur(kr)) {
			if attempt > 0 {
				s.m.SetAudit(s.cfg.Audit)
				s.observeRound(true, false)
			}
			s.budgetShed.Add(int64(len(batch)))
			s.failBatch(batch, ErrBudgetExhausted)
			return
		}
		tag := ""
		if attempt > 0 {
			tag = fmt.Sprintf("retry %d audited", attempt)
		}
		results, h, err := s.meshRound(kr, fmt.Sprintf("serve %s round %d attempt %d", kr.kind, round, attempt), tag, queries)
		// Each attempt — failed ones included — closes its own mesh-round
		// span, so a recovered batch's trace shows mesh/backoff/mesh/...
		s.markBatch(batch, obs.StageMesh)
		if err == nil {
			if attempt > 0 {
				s.recovered.Add(1)
				s.m.SetAudit(s.cfg.Audit)
			}
			seq, label := h.Seq(), h.Label()
			for i, r := range batch {
				ans := kr.st.Extract(results, i)
				if r.tr != nil {
					// Cross-link before the resp send: delivery hands the
					// trace back to the Lookup goroutine.
					r.tr.LinkRun(seq, label)
				}
				r.resp <- response{res: Result{
					Kind:    kr.kind,
					Needle:  r.args[0],
					Found:   ans.Found,
					LeafKey: ans.Value,
					Value:   ans.Value,
					Aux:     ans.Aux,
					Steps:   ans.Steps,
					Round:   round,
				}}
			}
			s.served.Add(int64(len(batch)))
			kr.served.Add(int64(len(batch)))
			s.observeRound(attempt > 0, false)
			return
		}
		lastErr = err
		class := core.Classify(err)
		s.faults[class].Add(1)
		if !class.Retryable() {
			break
		}
	}
	s.m.SetAudit(s.cfg.Audit)
	s.observeRound(true, true)
	if s.cfg.DisableDegrade || s.cfg.DisableOracle {
		// DisableDegrade: the whole ladder is off — deliver the typed
		// fault (observeRound was a no-op). DisableOracle: the breaker has
		// recorded the terminal failure and opened the circuit, but the
		// oracle rung lives above this instance, so the fault surfaces for
		// the fleet to fail over.
		s.failBatch(batch, lastErr)
		return
	}
	s.degradeBatch(kr, batch, round)
}

// batchDoomed reports whether every request of the batch carries a deadline
// that cannot survive one more round of the given expected duration: the
// shed condition of the retry-ladder budget rung. A single request without a
// deadline (or with budget to spare) keeps the batch alive — the round runs
// and answers whoever is still listening.
func batchDoomed(batch []request, need time.Duration) bool {
	now := time.Now()
	for _, r := range batch {
		if r.deadline.IsZero() || r.deadline.Sub(now) > need {
			return false
		}
	}
	return true
}

// failBatch delivers one error to every query of the batch.
func (s *Instance) failBatch(batch []request, err error) {
	s.failed.Add(int64(len(batch)))
	for _, r := range batch {
		r.resp <- response{err: err}
	}
}

// meshRound executes one mesh attempt of one kind: install the kind's step
// budget, reset the step clock (per-attempt budget, fresh traced run —
// tagged when the attempt is a retry or canary), load the queries against
// the kind's resident structure, and run its multisearch inside the
// core.Run containment boundary. The returned trace.Handle names this
// attempt's step-clock run (inert when no tracer is installed): tagging goes
// through it — keyed to the run, not "most recently attached", which was a
// cross-goroutine race when concurrent instances shared one Tracer — and the
// observability layer embeds its Seq/Label in the request traces it links.
func (s *Instance) meshRound(kr *kindRuntime, label, tag string, queries []core.Query) ([]core.Query, trace.Handle, error) {
	if s.m.Budget() != kr.budget {
		s.m.SetBudget(kr.budget) // per-kind budget, quiescent between rounds
	}
	s.m.ResetSteps()
	h, _ := trace.HandleFor(s.m.TraceRun())
	if tag != "" {
		h.Tag(tag)
	}
	t0 := time.Now()
	err := core.Run(label, func() error {
		v := s.m.Root()
		defer trace.Span(v, "%s q=%d", label, len(queries))()
		kr.in.ResetQueries(v, queries)
		kr.st.Search(v, kr.in)
		return nil
	})
	steps := s.m.Steps()
	s.simSteps.Add(steps)
	kr.simSteps.Add(steps)
	if err != nil {
		return nil, h, err
	}
	// Completed rounds train the expected-round-time model (§3.11): wall
	// time over charged steps. A latency-injected mesh completes its rounds
	// slowly but correctly, so its growing ns/step ratio is exactly the gray
	// failure signal the budget checks and the fleet's ejection score read.
	s.observeStepRatio(kr, steps, time.Since(t0))
	return kr.in.ResultQueries(), h, nil
}

// markBatch closes one stage span on every traced request of the batch with
// a single clock read, so all of a round's traces agree on where the batch
// boundary fell. No-op (no clock read) when observability is off.
func (s *Instance) markBatch(batch []request, stage obs.Stage) {
	if s.obs == nil {
		return
	}
	now := time.Now()
	for _, r := range batch {
		if r.tr != nil {
			r.tr.MarkAt(stage, now)
			if stage == obs.StageMesh {
				r.tr.Attempts++
			}
		}
	}
}

// degradeBatch answers every query of the batch from the kind's host-side
// oracle descent: correct (same answer, same search-path length a faithful
// round would report) but unaccounted in mesh steps, and flagged Degraded.
func (s *Instance) degradeBatch(kr *kindRuntime, batch []request, round int64) {
	for _, r := range batch {
		ans := HostAnswer(kr.st, r.args)
		if r.tr != nil {
			// Per-request, before the resp send (which hands the trace back
			// to the Lookup goroutine): the oracle span covers this
			// request's share of the host-side sweep.
			r.tr.Mark(obs.StageOracle)
		}
		r.resp <- response{res: Result{
			Kind:     kr.kind,
			Needle:   r.args[0],
			Found:    ans.Found,
			LeafKey:  ans.Value,
			Value:    ans.Value,
			Aux:      ans.Aux,
			Steps:    ans.Steps,
			Round:    round,
			Degraded: true,
		}}
	}
	s.degraded.Add(int64(len(batch)))
	kr.degraded.Add(int64(len(batch)))
	s.degradedRounds.Add(1)
	s.served.Add(int64(len(batch)))
	kr.served.Add(int64(len(batch)))
}

// observeRound feeds the circuit breaker with one mesh-path outcome.
// firstAttemptFailed is the breaker's signal (it measures mesh fault rate,
// not user-visible failures — a recovered round still counts against the
// window); terminal means the whole ladder failed, which opens the circuit
// immediately rather than waiting for the window to fill.
func (s *Instance) observeRound(firstAttemptFailed, terminal bool) {
	if s.cfg.DisableDegrade {
		return
	}
	open := s.brk.record(firstAttemptFailed)
	if terminal || open {
		s.openCircuit()
	}
}

// openCircuit transitions healthy → degraded (idempotent).
func (s *Instance) openCircuit() {
	if s.circuitOpen.CompareAndSwap(false, true) {
		s.circuitOpens.Add(1)
		s.brk.reset()
		s.lastCanary = time.Time{} // first canary is immediately due
	}
}

// closeCircuit transitions degraded → healthy (idempotent).
func (s *Instance) closeCircuit() {
	if s.circuitOpen.CompareAndSwap(true, false) {
		s.circuitCloses.Add(1)
		s.brk.reset()
	}
}

// canaryDue reports whether an open circuit should probe the mesh now.
// A non-positive CanaryInterval disables probing (tests drive recovery by
// hand); lastCanary is executor-owned.
func (s *Instance) canaryDue() bool {
	if s.canaryEvery <= 0 {
		return false
	}
	return time.Since(s.lastCanary) >= s.canaryEvery
}

// runCanary probes the mesh with one audited round per enabled kind over
// each kind's small synthetic probe set, and closes the circuit only when
// every round completes and every answer agrees with the kind's host
// oracle. Canary answers go nowhere — the probe exists only to decide
// whether real traffic can trust the mesh again, and a mesh distrusted for
// one kind is distrusted for all (the fault classes are mesh-level, not
// structure-level).
func (s *Instance) runCanary() {
	s.lastCanary = time.Now()
	s.canaryRounds.Add(1)
	s.m.SetAudit(true)
	ok := true
	var firstErr error
	for _, kind := range s.kinds {
		kr := s.kr[kind]
		probes := kr.st.Canary()
		if len(probes) > s.m.N() {
			probes = probes[:s.m.N()]
		}
		queries := kr.st.MakeQueries(probes)
		results, _, err := s.meshRound(kr, fmt.Sprintf("canary %s %d", kind, s.canaryRounds.Load()), "canary", queries)
		if err != nil {
			ok = false
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		for i, probe := range probes {
			got := kr.st.Extract(results, i)
			want := HostAnswer(kr.st, probe)
			if got.Found != want.Found || got.Value != want.Value {
				ok = false // silent corruption the audit did not catch
				break
			}
		}
		if !ok {
			break
		}
	}
	s.m.SetAudit(s.cfg.Audit)
	if ok {
		s.closeCircuit()
		return
	}
	s.canaryFailures.Add(1)
	if firstErr != nil {
		s.faults[core.Classify(firstErr)].Add(1)
	}
}
