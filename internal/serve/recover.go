package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file is the recovery ladder around the round executor (DESIGN.md
// §3.6). Everything here runs on the executor goroutine — the only
// goroutine that touches the mesh — so audit toggling, breaker bookkeeping
// and canary scheduling need no locks; the rest of the server observes the
// outcome through the atomic counters and the circuitOpen/lameduck flags.

// serveBatch answers one batch. Circuit open: probe the mesh with a canary
// if one is due, then either serve normally (canary closed the circuit) or
// answer from the host oracle. Circuit closed: run the retry ladder —
// attempt the round, classify any fault, re-execute with auditing forced on
// under jittered backoff, and degrade to the oracle when the mesh keeps
// failing.
func (s *Instance) serveBatch(batch []request) {
	round := s.rounds.Add(1)
	s.lastBatch.Store(int64(len(batch)))
	if int64(len(batch)) > s.peakBatch.Load() {
		s.peakBatch.Store(int64(len(batch)))
	}
	// One clock read closes the linger span of the whole batch: dequeue →
	// round start, including the wait in the one-slot pipeline channel.
	s.markBatch(batch, obs.StageLinger)

	if s.circuitOpen.Load() {
		if s.canaryDue() {
			s.runCanary()
		}
		if s.circuitOpen.Load() {
			if s.cfg.DisableOracle {
				// No oracle rung on this instance: fail fast with the
				// typed circuit error so the fleet can re-dispatch the
				// lookup to a replica whose mesh is still trusted.
				s.failBatch(batch, ErrCircuitOpen)
				return
			}
			s.degradeBatch(batch, round)
			return
		}
	}

	queries := make([]core.Query, len(batch))
	for i, r := range batch {
		queries[i].Cur = s.bt.Root
		queries[i].State[0] = r.needle
	}
	var lastErr error
	for attempt := 0; attempt <= s.maxRetries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			s.m.SetAudit(true) // escalate strictness on every re-execution
			ok := s.backoff.Sleep(s.runCtx, attempt-1)
			s.markBatch(batch, obs.StageBackoff)
			if !ok {
				break // server context gone: no point re-executing
			}
		}
		tag := ""
		if attempt > 0 {
			tag = fmt.Sprintf("retry %d audited", attempt)
		}
		results, h, err := s.meshRound(fmt.Sprintf("serve round %d attempt %d", round, attempt), tag, queries)
		// Each attempt — failed ones included — closes its own mesh-round
		// span, so a recovered batch's trace shows mesh/backoff/mesh/...
		s.markBatch(batch, obs.StageMesh)
		if err == nil {
			if attempt > 0 {
				s.recovered.Add(1)
				s.m.SetAudit(s.cfg.Audit)
			}
			seq, label := h.Seq(), h.Label()
			for i, r := range batch {
				q := results[i]
				if r.tr != nil {
					// Cross-link before the resp send: delivery hands the
					// trace back to the Lookup goroutine.
					r.tr.LinkRun(seq, label)
				}
				r.resp <- response{res: Result{
					Needle:  r.needle,
					Found:   dict.Member(q),
					LeafKey: q.State[dict.StateLeafKey],
					Steps:   q.Steps,
					Round:   round,
				}}
			}
			s.served.Add(int64(len(batch)))
			s.observeRound(attempt > 0, false)
			return
		}
		lastErr = err
		class := core.Classify(err)
		s.faults[class].Add(1)
		if !class.Retryable() {
			break
		}
	}
	s.m.SetAudit(s.cfg.Audit)
	s.observeRound(true, true)
	if s.cfg.DisableDegrade || s.cfg.DisableOracle {
		// DisableDegrade: the whole ladder is off — deliver the typed
		// fault (observeRound was a no-op). DisableOracle: the breaker has
		// recorded the terminal failure and opened the circuit, but the
		// oracle rung lives above this instance, so the fault surfaces for
		// the fleet to fail over.
		s.failBatch(batch, lastErr)
		return
	}
	s.degradeBatch(batch, round)
}

// failBatch delivers one error to every query of the batch.
func (s *Instance) failBatch(batch []request, err error) {
	s.failed.Add(int64(len(batch)))
	for _, r := range batch {
		r.resp <- response{err: err}
	}
}

// meshRound executes one mesh attempt: reset the step clock (per-attempt
// budget, fresh traced run — tagged when the attempt is a retry or canary),
// load the queries against the resident tree, and run Algorithm 2 inside
// the core.Run containment boundary. The returned trace.Handle names this
// attempt's step-clock run (inert when no tracer is installed): tagging goes
// through it — keyed to the run, not "most recently attached", which was a
// cross-goroutine race when concurrent instances shared one Tracer — and the
// observability layer embeds its Seq/Label in the request traces it links.
func (s *Instance) meshRound(label, tag string, queries []core.Query) ([]core.Query, trace.Handle, error) {
	s.m.ResetSteps()
	h, _ := trace.HandleFor(s.m.TraceRun())
	if tag != "" {
		h.Tag(tag)
	}
	err := core.Run(label, func() error {
		v := s.m.Root()
		defer trace.Span(v, "%s q=%d", label, len(queries))()
		s.in.ResetQueries(v, queries)
		core.MultisearchAlpha(v, s.in, s.maxPart, 0)
		return nil
	})
	s.simSteps.Add(s.m.Steps())
	if err != nil {
		return nil, h, err
	}
	return s.in.ResultQueries(), h, nil
}

// markBatch closes one stage span on every traced request of the batch with
// a single clock read, so all of a round's traces agree on where the batch
// boundary fell. No-op (no clock read) when observability is off.
func (s *Instance) markBatch(batch []request, stage obs.Stage) {
	if s.obs == nil {
		return
	}
	now := time.Now()
	for _, r := range batch {
		if r.tr != nil {
			r.tr.MarkAt(stage, now)
			if stage == obs.StageMesh {
				r.tr.Attempts++
			}
		}
	}
}

// degradeBatch answers every query of the batch from the host-side
// dictionary oracle: correct (same leaf, same search-path length a faithful
// round would report) but unaccounted in mesh steps, and flagged Degraded.
func (s *Instance) degradeBatch(batch []request, round int64) {
	for _, r := range batch {
		leaf, found, path := s.bt.HostLookup(r.needle)
		if r.tr != nil {
			// Per-request, before the resp send (which hands the trace back
			// to the Lookup goroutine): the oracle span covers this
			// request's share of the host-side sweep.
			r.tr.Mark(obs.StageOracle)
		}
		r.resp <- response{res: Result{
			Needle:   r.needle,
			Found:    found,
			LeafKey:  leaf,
			Steps:    path,
			Round:    round,
			Degraded: true,
		}}
	}
	s.degraded.Add(int64(len(batch)))
	s.degradedRounds.Add(1)
	s.served.Add(int64(len(batch)))
}

// observeRound feeds the circuit breaker with one mesh-path outcome.
// firstAttemptFailed is the breaker's signal (it measures mesh fault rate,
// not user-visible failures — a recovered round still counts against the
// window); terminal means the whole ladder failed, which opens the circuit
// immediately rather than waiting for the window to fill.
func (s *Instance) observeRound(firstAttemptFailed, terminal bool) {
	if s.cfg.DisableDegrade {
		return
	}
	open := s.brk.record(firstAttemptFailed)
	if terminal || open {
		s.openCircuit()
	}
}

// openCircuit transitions healthy → degraded (idempotent).
func (s *Instance) openCircuit() {
	if s.circuitOpen.CompareAndSwap(false, true) {
		s.circuitOpens.Add(1)
		s.brk.reset()
		s.lastCanary = time.Time{} // first canary is immediately due
	}
}

// closeCircuit transitions degraded → healthy (idempotent).
func (s *Instance) closeCircuit() {
	if s.circuitOpen.CompareAndSwap(true, false) {
		s.circuitCloses.Add(1)
		s.brk.reset()
	}
}

// canaryDue reports whether an open circuit should probe the mesh now.
// A non-positive CanaryInterval disables probing (tests drive recovery by
// hand); lastCanary is executor-owned.
func (s *Instance) canaryDue() bool {
	if s.canaryEvery <= 0 {
		return false
	}
	return time.Since(s.lastCanary) >= s.canaryEvery
}

// runCanary probes the mesh with an audited round over a small synthetic
// batch and closes the circuit when the round completes and every answer
// agrees with the host oracle. Canary answers go nowhere — the probe exists
// only to decide whether real traffic can trust the mesh again.
func (s *Instance) runCanary() {
	s.lastCanary = time.Now()
	s.canaryRounds.Add(1)
	needles := s.canaryNeedles()
	queries := make([]core.Query, len(needles))
	for i, k := range needles {
		queries[i].Cur = s.bt.Root
		queries[i].State[0] = k
	}
	s.m.SetAudit(true)
	results, _, err := s.meshRound(fmt.Sprintf("canary %d", s.canaryRounds.Load()), "canary", queries)
	s.m.SetAudit(s.cfg.Audit)
	ok := err == nil
	if ok {
		for i, k := range needles {
			leaf, found, _ := s.bt.HostLookup(k)
			if dict.Member(results[i]) != found || results[i].State[dict.StateLeafKey] != leaf {
				ok = false // silent corruption the audit did not catch
				break
			}
		}
	}
	if ok {
		s.closeCircuit()
		return
	}
	s.canaryFailures.Add(1)
	if err != nil {
		s.faults[core.Classify(err)].Add(1)
	}
}

// canaryNeedles picks a small probe set spanning the key range: known
// members at both ends and the middle, plus guaranteed leaf-boundary
// probes on either side of them.
func (s *Instance) canaryNeedles() []int64 {
	ks := s.bt.Keys
	probes := []int64{ks[0], ks[len(ks)/2], ks[len(ks)-1], ks[0] - 1, ks[len(ks)-1] + 1, ks[len(ks)/2] + 1}
	if len(probes) > s.m.N() {
		probes = probes[:s.m.N()]
	}
	return probes
}
