package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// checkTracePartition asserts the §3.9 span-partition invariant on one
// finished trace: contiguous spans, first at 0, summing exactly to the
// end-to-end duration.
func checkTracePartition(t *testing.T, tr *obs.ReqTrace) {
	t.Helper()
	if len(tr.Spans) == 0 {
		t.Errorf("trace %s finished with no spans", tr.ID)
		return
	}
	if tr.Spans[0].Start != 0 {
		t.Errorf("trace %s: first span starts at %s", tr.ID, tr.Spans[0].Start)
	}
	var sum time.Duration
	for i, sp := range tr.Spans {
		if sp.End < sp.Start {
			t.Errorf("trace %s span %d (%s): negative", tr.ID, i, sp.Stage)
		}
		if i > 0 && sp.Start != tr.Spans[i-1].End {
			t.Errorf("trace %s span %d (%s): gap/overlap at %s vs %s",
				tr.ID, i, sp.Stage, sp.Start, tr.Spans[i-1].End)
		}
		sum += sp.Dur()
	}
	if sum != tr.Dur() {
		t.Errorf("trace %s: spans sum to %s, e2e %s (outcome %s)", tr.ID, sum, tr.Dur(), tr.Outcome)
	}
}

// TestStagePartitionUnderConcurrentLoad is satellite proof for the tentpole
// invariant: under real concurrency — contended admission, batching, the
// full pipeline — every finished trace's spans still partition its latency
// exactly, carry the expected lifecycle stages, and link a step-clock run.
func TestStagePartitionUnderConcurrentLoad(t *testing.T) {
	o := obs.New(obs.Config{Ring: 2048})
	s := newTestServer(t, Config{Side: 8, Linger: 200 * time.Microsecond, Obs: o, Tracer: trace.New()})
	const clients, perClient = 12, 15
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				needle := int64((c*perClient + i) % 40)
				for {
					if _, err := s.Lookup(context.Background(), needle); !errors.Is(err, ErrOverloaded) {
						if err != nil {
							t.Errorf("lookup %d: %v", needle, err)
						}
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()

	if got := o.OutcomeCount(obs.OutcomeMesh); got != clients*perClient {
		t.Fatalf("mesh outcomes %d, want %d", got, clients*perClient)
	}
	traces := o.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	for _, tr := range traces {
		checkTracePartition(t, tr)
		for _, st := range []obs.Stage{obs.StageAdmit, obs.StageQueue, obs.StageLinger, obs.StageMesh, obs.StageDeliver} {
			if !tr.HasStage(st) {
				t.Errorf("trace %s (outcome %s) lacks stage %s: %+v", tr.ID, tr.Outcome, st, tr.Spans)
			}
		}
		if tr.HasStage(obs.StageFailover) || tr.HasStage(obs.StageOracle) {
			t.Errorf("healthy single-instance trace %s grew fleet/oracle spans", tr.ID)
		}
		if tr.RunSeq <= 0 || tr.RunLabel == "" {
			t.Errorf("trace %s not linked to a step-clock run: seq=%d label=%q", tr.ID, tr.RunSeq, tr.RunLabel)
		}
		if tr.Attempts != 1 {
			t.Errorf("healthy trace %s took %d attempts", tr.ID, tr.Attempts)
		}
		if tr.Replica != -2 {
			t.Errorf("bare-instance trace %s has replica %d, want unset", tr.ID, tr.Replica)
		}
	}
}

// TestStagePartitionUnderChaos (satellite 4) drives the recovery ladder —
// audited faults, retries with backoff, degrade-to-oracle — and checks the
// partition invariant holds on every path, with the retry and oracle stages
// present exactly where the outcome says they must be.
func TestStagePartitionUnderChaos(t *testing.T) {
	o := obs.New(obs.Config{Ring: 1024})
	g := &gateInjector{}
	s := newTestServer(t, Config{
		Side: 8, Audit: true, Injector: g, Obs: o, Tracer: trace.New(),
		MaxRetries: 2, RetryBackoff: 10 * time.Microsecond,
		Linger: 100 * time.Microsecond, CanaryInterval: 2 * time.Millisecond,
	})

	lookupAll := func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					res, err := s.Lookup(context.Background(), int64(2*i+1))
					if errors.Is(err, ErrOverloaded) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("lookup %d: %v", 2*i+1, err)
					} else if !res.Found {
						t.Errorf("lookup %d: odd key not found", 2*i+1)
					}
					return
				}
			}()
		}
		wg.Wait()
	}

	lookupAll(8) // healthy phase: mesh outcomes
	g.broken.Store(true)
	lookupAll(8) // broken phase: retry ladder → oracle degrade, circuit opens
	g.broken.Store(false)
	// Wait for a canary to close the circuit so the last phase serves mesh.
	deadline := time.Now().Add(5 * time.Second)
	for s.Health() != Healthy && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Health() != Healthy {
		t.Fatal("circuit never closed after faults cleared")
	}
	lookupAll(8) // recovered phase

	if o.OutcomeCount(obs.OutcomeDegraded) == 0 {
		t.Fatal("broken phase produced no degraded outcomes")
	}
	if o.OutcomeCount(obs.OutcomeMesh) < 16 {
		t.Fatalf("healthy phases produced %d mesh outcomes, want ≥ 16", o.OutcomeCount(obs.OutcomeMesh))
	}
	sawRetriedDegrade := false
	for _, tr := range o.Traces() {
		checkTracePartition(t, tr)
		switch tr.Outcome {
		case obs.OutcomeDegraded:
			if !tr.HasStage(obs.StageOracle) {
				t.Errorf("degraded trace %s has no oracle_fallback span: %+v", tr.ID, tr.Spans)
			}
			// A batch that walked the retry ladder shows mesh/backoff/mesh…;
			// one answered on the already-open circuit has no mesh attempts.
			if tr.Attempts > 0 {
				if tr.Attempts != 3 { // initial + MaxRetries, all faulting
					t.Errorf("degraded trace %s took %d attempts, want 3", tr.ID, tr.Attempts)
				}
				if !tr.HasStage(obs.StageBackoff) {
					t.Errorf("retried trace %s has no retry_backoff span", tr.ID)
				}
				sawRetriedDegrade = true
			}
			if tr.RunSeq != 0 {
				t.Errorf("degraded trace %s links run %d; no round answered it", tr.ID, tr.RunSeq)
			}
		case obs.OutcomeMesh:
			if tr.HasStage(obs.StageOracle) {
				t.Errorf("mesh trace %s has an oracle span", tr.ID)
			}
			if tr.RunSeq <= 0 {
				t.Errorf("mesh trace %s not linked to its run", tr.ID)
			}
		}
		if n := countStage(tr, obs.StageMesh); n != tr.Attempts {
			t.Errorf("trace %s: %d mesh_round spans but %d attempts", tr.ID, n, tr.Attempts)
		}
	}
	if !sawRetriedDegrade {
		t.Error("no degraded trace walked the full retry ladder (want mesh/backoff/mesh spans)")
	}
}

func countStage(tr *obs.ReqTrace, st obs.Stage) int {
	n := 0
	for _, sp := range tr.Spans {
		if sp.Stage == st {
			n++
		}
	}
	return n
}

// TestLatencySplitByOutcome (satellite 3) pins the outcome-split serving
// histograms: mesh and degraded samples land in their own histograms, the
// combined one sees both, and the Stats summaries expose the split.
func TestLatencySplitByOutcome(t *testing.T) {
	g := &gateInjector{}
	s := newTestServer(t, Config{
		Side: 8, Audit: true, Injector: g,
		MaxRetries: -1, RetryBackoff: 10 * time.Microsecond,
		BreakerWindow: 1 << 20,
	})
	for i := 0; i < 5; i++ {
		if _, err := s.Lookup(context.Background(), int64(2*i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g.broken.Store(true)
	for i := 0; i < 3; i++ {
		res, err := s.Lookup(context.Background(), int64(2*i+1))
		if err != nil || !res.Degraded {
			t.Fatalf("broken-phase lookup: res=%+v err=%v, want degraded answer", res, err)
		}
	}
	mesh, degraded := s.LatencyByOutcome()
	if mesh.Count != 5 || degraded.Count != 3 {
		t.Fatalf("split counts mesh=%d degraded=%d, want 5/3", mesh.Count, degraded.Count)
	}
	if all := s.LatencySnapshot(); all.Count != 8 {
		t.Fatalf("combined count %d, want 8 (split must not replace it)", all.Count)
	}
	st := s.Stats()
	if st.LatencyMesh.Count != 5 || st.LatencyDegraded.Count != 3 {
		t.Fatalf("stats split: %+v / %+v", st.LatencyMesh, st.LatencyDegraded)
	}
}

// TestLookupAbandonedNotRetained pins the Abandon rule: a client that gives
// up mid-flight increments the abandoned counter, and its trace never enters
// the ring (the pipeline may still be writing to it).
func TestLookupAbandonedNotRetained(t *testing.T) {
	o := obs.New(obs.Config{})
	g := newStallInjector()
	s := newTestServer(t, Config{Side: 8, Injector: g, Obs: o, Linger: time.Millisecond})
	g.armed.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Lookup(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled lookup returned %v, want deadline exceeded", err)
	}
	if o.Abandoned() != 1 {
		t.Fatalf("abandoned count %d, want 1", o.Abandoned())
	}
	for _, tr := range o.Traces() {
		if tr.Needle == 1 && tr.Outcome == obs.OutcomeMesh {
			t.Fatal("abandoned trace retained while pipeline still owned it")
		}
	}
	g.armed.Store(false)
	close(g.release)
}

// BenchmarkLookupObsOff/On measure the tracing overhead on the full serving
// path (EXPERIMENTS.md E24). With Obs nil the per-request cost is pointer
// checks only; run with -benchmem to compare allocations.
func BenchmarkLookupObsOff(b *testing.B) { benchLookup(b, nil) }
func BenchmarkLookupObsOn(b *testing.B) {
	benchLookup(b, obs.New(obs.Config{}))
}

func benchLookup(b *testing.B, o *obs.Observer) {
	s, err := New(Config{Side: 8, Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(ctx, int64(i%40)); err != nil {
			b.Fatal(err)
		}
	}
}
