package serve

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff is a jittered exponential backoff policy, shared by the server's
// recovery ladder (sleeping between round re-executions) and by clients
// backing off ErrOverloaded (the meshserve load generator). Full jitter:
// attempt k (0-based) sleeps a uniform duration in (0, min(Cap, Base·2^k)],
// so a thundering herd of rejected clients decorrelates instead of
// re-colliding on a fixed boundary.
//
// The zero value is usable: Base defaults to 200µs (one mesh round on the
// small meshes is in that range) and Cap to 50ms.
type Backoff struct {
	Base time.Duration // ceiling of the first sleep (default 200µs)
	Cap  time.Duration // ceiling of any sleep (default 50ms)
	// Jitter draws the uniform variate in [0, n). Nil uses the process
	// global math/rand source — concurrency-safe but unseedable, so two
	// chaos runs with identical fault seeds still sleep differently.
	// SeededJitter builds a deterministic replacement from the chaos seed.
	Jitter func(n int64) int64
}

// SeededJitter returns a concurrency-safe jitter source seeded with seed,
// for reproducible backoff schedules in chaos runs: the same seed draws the
// same delay sequence (per Backoff value — each caller gets its own stream).
func SeededJitter(seed int64) func(int64) int64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(n int64) int64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Int63n(n)
	}
}

// Delay returns the jittered sleep duration before retry attempt k
// (0-based). Always positive, so callers can use it as a timer interval.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Cap
	if base <= 0 {
		base = 200 * time.Microsecond
	}
	if max <= 0 {
		max = 50 * time.Millisecond
	}
	if base > max {
		base = max
	}
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	jitter := b.Jitter
	if jitter == nil {
		jitter = rand.Int63n
	}
	return time.Duration(jitter(int64(ceil))) + 1
}

// Sleep blocks for Delay(attempt) or until ctx is done, whichever comes
// first, and reports whether the full delay elapsed (false means the
// context fired and the caller should stop retrying).
func (b Backoff) Sleep(ctx context.Context, attempt int) bool {
	d := b.Delay(attempt)
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
