package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestTraceparentPropagationHTTP drives the instance's HTTP surface the way
// loadgen.HTTPTarget does: a client-minted traceparent must be adopted as the
// server-side trace ID, echoed in the response header, and the finished trace
// must be retrievable at /debug/traces under that same ID.
func TestTraceparentPropagationHTTP(t *testing.T) {
	o := obs.New(obs.Config{})
	s := newTestServer(t, Config{Side: 8, Linger: 100 * time.Microsecond, Obs: o, Tracer: trace.New()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := obs.NewTraceID()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/search?key=7", nil)
	req.Header.Set("Traceparent", id.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/search: %d", resp.StatusCode)
	}
	echoed, err := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil || echoed != id {
		t.Fatalf("response traceparent %q does not echo the request ID %s (err %v)",
			resp.Header.Get("Traceparent"), id, err)
	}

	dr, err := http.Get(srv.URL + "/debug/traces?id=" + id.String())
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?id=: %d", dr.StatusCode)
	}
	var doc obs.TraceJSON
	if err := json.NewDecoder(dr.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != id.String() || doc.Needle != 7 || doc.Outcome != "mesh" {
		t.Fatalf("retrieved trace: %+v", doc)
	}
	if len(doc.Spans) == 0 || doc.RunSeq <= 0 {
		t.Fatalf("trace lacks spans or run link: %+v", doc)
	}

	// A malformed inbound header is ignored per spec: the server mints its
	// own ID and still echoes a valid one.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+"/search?key=9", nil)
	req2.Header.Set("Traceparent", "garbage")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if _, err := obs.ParseTraceparent(resp2.Header.Get("Traceparent")); err != nil {
		t.Fatalf("malformed inbound header: response carries invalid traceparent %q",
			resp2.Header.Get("Traceparent"))
	}
}

// TestMetricsPrometheusFormat smoke-tests the text exposition next to the
// JSON default: right content type, the core families present, histogram
// series terminated by +Inf. (Full grammar validation lives in internal/obs
// and the CI obs-smoke job.)
func TestMetricsPrometheusFormat(t *testing.T) {
	o := obs.New(obs.Config{})
	s := newTestServer(t, Config{Side: 8, Linger: 100 * time.Microsecond, Obs: o, Tracer: trace.New()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/search?key=7"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE meshserve_lookups_total counter",
		`meshserve_lookups_total{result="accepted"} 1`,
		"# TYPE meshserve_request_duration_seconds histogram",
		`meshserve_request_duration_seconds_bucket{outcome="all",le="+Inf"} 1`,
		`meshserve_stage_duration_seconds_bucket{stage="mesh_round",le="+Inf"} 1`,
		`meshserve_requests_total{outcome="mesh"} 1`,
		"meshserve_slo_latency_burn_rate",
		`meshserve_health_state{state="healthy"} 1`,
		"meshserve_queue_capacity",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The JSON document stays the default — remote scrapers predate the flag.
	jr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if ct := jr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default /metrics content type %q, want JSON", ct)
	}
}

// TestDebugTracesDisabled: without an Observer the endpoint exists but says
// why it has nothing, rather than 404-ing into the void.
func TestDebugTracesDisabled(t *testing.T) {
	s := newTestServer(t, Config{Side: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "tracing disabled") {
		t.Fatalf("disabled /debug/traces: %d %q", resp.StatusCode, body)
	}
}
