package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeadlineBudgetAdmissionShed pins the §3.11 admission rung: once one
// served round has trained the expected-round-time model, a lookup whose
// remaining deadline budget cannot cover one linger window plus one expected
// round is refused with ErrBudgetExhausted (and counted in Stats.BudgetShed)
// instead of queueing, lingering, and expiring mid-round.
func TestDeadlineBudgetAdmissionShed(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Linger: 500 * time.Microsecond})

	// Before any round the model is untrained: unknown never sheds, even
	// with a hopeless budget (the lookup may still lose to its deadline the
	// ordinary way — it just must not be *budget*-shed).
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	_, err := s.Lookup(ctx, 3)
	cancel()
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("untrained expected-round-time model shed a lookup")
	}
	if st := s.Stats(); st.BudgetShed != 0 {
		t.Fatalf("BudgetShed = %d before any observed round", st.BudgetShed)
	}

	// Train: one served round records steps and ns/step for the kind.
	if _, err := s.Lookup(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	need := s.ExpectedRoundTime(KindMembership)
	if need <= 0 {
		t.Fatalf("ExpectedRoundTime = %v after a served round", need)
	}

	// A budget of half one expected round is doomed work; admission sheds
	// it. Retried a few times because the budget can also expire outright
	// between ctx creation and the admission check on a loaded machine.
	shed := false
	for i := 0; i < 100 && !shed; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), need/2)
		_, err := s.Lookup(ctx, 5)
		cancel()
		switch {
		case errors.Is(err, ErrBudgetExhausted):
			shed = true
		case err == nil, errors.Is(err, context.DeadlineExceeded):
		default:
			t.Fatalf("lookup under a doomed budget: %v", err)
		}
	}
	if !shed {
		t.Fatalf("no lookup with budget %v (< expected round %v) was shed in 100 tries", need/2, need)
	}
	if st := s.Stats(); st.BudgetShed == 0 {
		t.Fatal("a shed lookup left Stats.BudgetShed at 0")
	}

	// Budget discipline must not leak onto unbudgeted or comfortable
	// lookups: no deadline and a generous deadline both serve normally.
	if _, err := s.Lookup(context.Background(), 7); err != nil {
		t.Fatalf("deadline-free lookup after sheds: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := s.Lookup(ctx2, 9); err != nil {
		t.Fatalf("generously budgeted lookup: %v", err)
	}
}
