package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// allExtraKinds is every non-membership kind (membership is always served).
var allExtraKinds = []Kind{KindPointLoc, KindInterval, KindLinePoly, KindTangent}

func TestParseKindAndAliases(t *testing.T) {
	cases := map[string]Kind{
		"":                KindMembership,
		"membership":      KindMembership,
		"dict":            KindMembership,
		"pointloc":        KindPointLoc,
		"point-location":  KindPointLoc,
		"interval":        KindInterval,
		"interval-stab":   KindInterval,
		"linepoly":        KindLinePoly,
		"line-polyhedron": KindLinePoly,
		"tangent":         KindTangent,
		"tangent-plane":   KindTangent,
		" Membership ":    KindMembership,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) did not error")
	}
	// Round trip: every kind's canonical name parses back to itself.
	for k := Kind(0); k < NumKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%s) = %v, %v; want %v", k, got, err, k)
		}
	}
}

func TestKindJSONRoundTripAndLegacyNumeric(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Errorf("kind %s JSON round trip: got %v, %v", k, back, err)
		}
	}
	// A v1 document that carried a numeric kind still decodes.
	var k Kind
	if err := json.Unmarshal([]byte(`1`), &k); err != nil || k != KindPointLoc {
		t.Errorf("numeric kind decode: got %v, %v; want pointloc", k, err)
	}
	// Membership marshals to the zero value, so omitempty keeps v1 JSON shapes.
	var res Result
	b, _ := json.Marshal(res)
	var doc map[string]any
	_ = json.Unmarshal(b, &doc)
	if doc["kind"] != "membership" {
		t.Errorf("zero Result kind = %v, want membership", doc["kind"])
	}
}

// TestBuildStructuresDeterministic rebuilds the full set twice and requires
// the host oracle to agree answer-for-answer — the property that lets a
// remote load generator reconstruct every kind's oracle from (side, keys).
func TestBuildStructuresDeterministic(t *testing.T) {
	keys := make([]int64, 16)
	for i := range keys {
		keys[i] = int64(2*i + 1)
	}
	a, err := BuildStructures(8, keys, 2, 3, allExtraKinds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStructures(8, keys, 2, 3, allExtraKinds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Kinds()) != len(allExtraKinds)+1 {
		t.Fatalf("built %v, want membership + %v", a.Kinds(), allExtraKinds)
	}
	for _, k := range a.Kinds() {
		sa, sb := a.Get(k), b.Get(k)
		for needle := int64(0); needle < 64; needle++ {
			if sa.ArgsFor(needle) != sb.ArgsFor(needle) {
				t.Fatalf("%s: ArgsFor(%d) differs across builds", k, needle)
			}
			ans1, ans2 := HostAnswer(sa, sa.ArgsFor(needle)), HostAnswer(sb, sb.ArgsFor(needle))
			if ans1 != ans2 {
				t.Fatalf("%s: HostAnswer(%d) differs across builds: %+v vs %+v", k, needle, ans1, ans2)
			}
		}
	}
}

// TestLookupKindAllFamilies serves every query family through one instance
// and checks each mesh answer against the family's own host oracle.
func TestLookupKindAllFamilies(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Linger: 200 * time.Microsecond, Kinds: allExtraKinds})
	ss := s.Structures()
	for _, k := range s.Kinds() {
		st := ss.Get(k)
		for needle := int64(0); needle < 24; needle++ {
			args := st.ArgsFor(needle)
			res, err := s.LookupKind(context.Background(), k, args)
			if errors.Is(err, ErrOverloaded) {
				needle--
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Fatalf("%s lookup %v: %v", k, args, err)
			}
			want := HostAnswer(st, args)
			if res.Found != want.Found || res.Value != want.Value || res.Steps != want.Steps {
				t.Fatalf("%s %v: mesh answered found=%v value=%d steps=%d, oracle says found=%v value=%d steps=%d",
					k, args, res.Found, res.Value, res.Steps, want.Found, want.Value, want.Steps)
			}
			if res.Kind != k {
				t.Fatalf("%s %v: result tagged %s", k, args, res.Kind)
			}
		}
	}
	st := s.Stats()
	if len(st.Kinds) != len(s.Kinds()) {
		t.Fatalf("stats report %d kinds, serving %d", len(st.Kinds), len(s.Kinds()))
	}
	for _, ks := range st.Kinds {
		if ks.Served == 0 {
			t.Errorf("kind %s reports zero served queries", ks.Kind)
		}
	}
}

func TestLookupKindNotServed(t *testing.T) {
	s := newTestServer(t, Config{Side: 8}) // membership only
	if _, err := s.LookupKind(context.Background(), KindPointLoc, Args{1, 2}); !errors.Is(err, ErrKindNotServed) {
		t.Fatalf("lookup of unserved kind: err = %v, want ErrKindNotServed", err)
	}
	if _, err := s.LookupKind(context.Background(), NumKinds+3, Args{}); !errors.Is(err, ErrKindNotServed) {
		t.Fatalf("lookup of out-of-range kind: err = %v, want ErrKindNotServed", err)
	}
}

// TestMixedKindRoundsMatchSingleKind is the isolation contract of the
// per-kind executor: interleaving kinds on the shared mesh must not change
// any kind's answers or step tables. The same argument set is served once on
// a mixed instance (all kinds in flight concurrently) and once on per-kind
// single-family instances; every (Found, Value, Steps) triple must be
// identical.
func TestMixedKindRoundsMatchSingleKind(t *testing.T) {
	const perKind = 16
	mixed := newTestServer(t, Config{Side: 8, Linger: 500 * time.Microsecond, Kinds: allExtraKinds})
	ss := mixed.Structures()

	type key struct {
		k Kind
		i int64
	}
	mixedRes := make(map[key]Result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, NumKinds*perKind)
	for _, k := range mixed.Kinds() {
		k := k
		st := ss.Get(k)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < perKind; i++ {
				args := st.ArgsFor(i)
				var res Result
				var err error
				for {
					res, err = mixed.LookupKind(context.Background(), k, args)
					if !errors.Is(err, ErrOverloaded) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					errs <- fmt.Errorf("%s lookup %v: %w", k, args, err)
					return
				}
				mu.Lock()
				mixedRes[key{k, i}] = res
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, k := range mixed.Kinds() {
		var kinds []Kind
		if k != KindMembership {
			kinds = []Kind{k}
		}
		single := newTestServer(t, Config{Side: 8, Linger: 500 * time.Microsecond, Kinds: kinds})
		st := single.Structures().Get(k)
		for i := int64(0); i < perKind; i++ {
			args := st.ArgsFor(i)
			var want Result
			var err error
			for {
				want, err = single.LookupKind(context.Background(), k, args)
				if !errors.Is(err, ErrOverloaded) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err != nil {
				t.Fatalf("single-kind %s lookup %v: %v", k, args, err)
			}
			got := mixedRes[key{k, i}]
			if got.Found != want.Found || got.Value != want.Value || got.Steps != want.Steps || got.Aux != want.Aux {
				t.Errorf("%s %v: mixed run answered found=%v value=%d aux=%d steps=%d; single-kind run found=%v value=%d aux=%d steps=%d",
					k, args, got.Found, got.Value, got.Aux, got.Steps, want.Found, want.Value, want.Aux, want.Steps)
			}
		}
	}
}

// TestMixedKindsZeroWrongUnderChaos is the per-kind acceptance bar: with
// seeded fault injection and audit on, every kind's every answer must still
// agree with its host oracle — faults may slow kinds down (retries, degrade
// rung) but never corrupt any family's answers.
func TestMixedKindsZeroWrongUnderChaos(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 42, PSortLie: 0.05, PCorrupt: 0.05, PDrop: 0.05, PDup: 0.05})
	s := newTestServer(t, Config{
		Side: 8, Linger: 300 * time.Microsecond, Kinds: allExtraKinds,
		Audit: true, Injector: inj,
	})
	ss := s.Structures()
	var wg sync.WaitGroup
	errs := make(chan error, NumKinds)
	for _, k := range s.Kinds() {
		k := k
		st := ss.Get(k)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(100); i < 130; i++ {
				args := st.ArgsFor(i)
				var res Result
				var err error
				for {
					res, err = s.LookupKind(context.Background(), k, args)
					if !errors.Is(err, ErrOverloaded) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					errs <- fmt.Errorf("%s lookup %v under chaos: %w", k, args, err)
					return
				}
				want := HostAnswer(st, args)
				if res.Found != want.Found || res.Value != want.Value {
					errs <- fmt.Errorf("%s %v: wrong answer under chaos (found=%v value=%d, oracle found=%v value=%d, degraded=%v)",
						k, args, res.Found, res.Value, want.Found, want.Value, res.Degraded)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if inj.Count() == 0 {
		t.Fatal("chaos injected no faults; the test exercised nothing")
	}
}

func TestParseSearchArgsPerKind(t *testing.T) {
	cases := []struct {
		kind  Kind
		query string
		want  Args
	}{
		{KindMembership, "key=7", Args{7}},
		{KindPointLoc, "x=3&y=-4", Args{3, -4}},
		{KindInterval, "lo=2&hi=9", Args{2, 9}},
		{KindLinePoly, "x=1&y=2", Args{1, 2}},
		{KindTangent, "dx=1&dy=0&dz=-5", Args{1, 0, -5}},
	}
	for _, c := range cases {
		q, _ := url.ParseQuery(c.query)
		got, err := ParseSearchArgs(c.kind, q)
		if err != nil || got != c.want {
			t.Errorf("ParseSearchArgs(%s, %q) = %v, %v; want %v", c.kind, c.query, got, err, c.want)
		}
	}
	// Missing and malformed parameters are rejected.
	for _, bad := range []struct {
		kind  Kind
		query string
	}{
		{KindPointLoc, "x=3"},
		{KindTangent, "dx=1&dy=2"},
		{KindMembership, "key=notanumber"},
	} {
		q, _ := url.ParseQuery(bad.query)
		if _, err := ParseSearchArgs(bad.kind, q); err == nil {
			t.Errorf("ParseSearchArgs(%s, %q) did not error", bad.kind, bad.query)
		}
	}
}

// TestHTTPSearchKinds drives every family through the HTTP surface: typed
// kind= queries answer 200 with a kind-tagged body, unknown kinds and
// unserved kinds answer 400, and the bare v1 ?key= shape still works.
func TestHTTPSearchKinds(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Linger: 200 * time.Microsecond, Kinds: allExtraKinds})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ss := s.Structures()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	for _, k := range s.Kinds() {
		st := ss.Get(k)
		args := st.ArgsFor(5)
		params := url.Values{}
		params.Set("kind", k.String())
		for i, name := range kindParams[k] {
			params.Set(name, fmt.Sprint(args[i]))
		}
		code, body := get("/search?" + params.Encode())
		if code != 200 {
			t.Fatalf("GET /search?%s → %d: %s", params.Encode(), code, body)
		}
		var res Result
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("%s: bad body %s: %v", k, body, err)
		}
		want := HostAnswer(st, args)
		if res.Kind != k || res.Found != want.Found || res.Value != want.Value {
			t.Fatalf("%s %v over HTTP: got kind=%s found=%v value=%d, want kind=%s found=%v value=%d",
				k, args, res.Kind, res.Found, res.Value, k, want.Found, want.Value)
		}
	}

	// v1 shape: bare ?key= is a membership query.
	if code, body := get("/search?key=7"); code != 200 {
		t.Fatalf("GET /search?key=7 → %d: %s", code, body)
	}
	// Unknown kind and malformed args are client errors.
	if code, _ := get("/search?kind=bogus&key=7"); code != 400 {
		t.Fatalf("unknown kind → %d, want 400", code)
	}
	if code, _ := get("/search?kind=pointloc&x=1"); code != 400 {
		t.Fatalf("missing param → %d, want 400", code)
	}
}

// TestHTTPSearchKindNotServed hits a membership-only server with a typed kind.
func TestHTTPSearchKindNotServed(t *testing.T) {
	s := newTestServer(t, Config{Side: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/search?kind=pointloc&x=1&y=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unserved kind → %d, want 400", resp.StatusCode)
	}
}
