package serve

import (
	"context"
	"testing"
	"time"
)

// TestBackoffDelayBounds pins the jitter envelope: every delay is positive,
// no delay exceeds the cap, and the ceiling grows with the attempt until
// the cap absorbs it.
func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		ceil := time.Millisecond << attempt
		if ceil > b.Cap {
			ceil = b.Cap
		}
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
	// Monotone ceiling growth: the per-attempt envelope min(Base·2^k, Cap)
	// never shrinks, and before the cap absorbs it the observed maximum at a
	// later attempt must actually exceed the earlier attempt's whole ceiling
	// (200 uniform draws over (0, 8ms] miss (1ms, 8ms] with p = (1/8)^200).
	prevCeil := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		ceil := time.Millisecond << attempt
		if ceil > b.Cap {
			ceil = b.Cap
		}
		if ceil < prevCeil {
			t.Fatalf("attempt %d: ceiling %v shrank from %v", attempt, ceil, prevCeil)
		}
		prevCeil = ceil
	}
	var maxAt3 time.Duration
	for i := 0; i < 200; i++ {
		if d := b.Delay(3); d > maxAt3 {
			maxAt3 = d
		}
	}
	if maxAt3 <= time.Millisecond {
		t.Fatalf("attempt 3 max observed delay %v never exceeded attempt 0's ceiling", maxAt3)
	}

	// Zero value: usable defaults.
	var zero Backoff
	for i := 0; i < 100; i++ {
		if d := zero.Delay(0); d <= 0 || d > 200*time.Microsecond {
			t.Fatalf("zero-value delay %v outside (0, 200µs]", d)
		}
	}
	// Base above cap clamps rather than panicking.
	weird := Backoff{Base: time.Second, Cap: time.Millisecond}
	if d := weird.Delay(5); d <= 0 || d > time.Millisecond {
		t.Fatalf("clamped delay %v outside (0, 1ms]", d)
	}
}

// TestBackoffSleepHonorsContext checks both exits: a live context sleeps
// the full jittered delay, a canceled one returns false immediately.
func TestBackoffSleepHonorsContext(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: time.Millisecond}
	if !b.Sleep(context.Background(), 0) {
		t.Fatal("sleep under a live context reported cancellation")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if b.Sleep(ctx, 10) {
		t.Fatal("sleep under a canceled context reported a full sleep")
	}
	if since := time.Since(start); since > 100*time.Millisecond {
		t.Fatalf("canceled sleep took %v", since)
	}
}

// TestSeededJitterIsDeterministic pins the chaos-reproducibility contract
// (satellite of §3.11): two Backoff values whose Jitter comes from
// SeededJitter with the same seed draw identical delay sequences, a
// different seed diverges, and New wires Config.BackoffSeed into the retry
// ladder's backoff (zero seed keeps the unseeded process-global source).
func TestSeededJitterIsDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		b := Backoff{Base: time.Millisecond, Cap: 32 * time.Millisecond, Jitter: SeededJitter(seed)}
		var ds []time.Duration
		for attempt := 0; attempt < 6; attempt++ {
			for i := 0; i < 20; i++ {
				ds = append(ds, b.Delay(attempt))
			}
		}
		return ds
	}
	a, b, c := draw(42), draw(42), draw(43)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: seed 42 twice gave %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 drew identical 120-delay sequences")
	}

	seeded := newTestServer(t, Config{Side: 8, BackoffSeed: 7})
	if seeded.backoff.Jitter == nil {
		t.Fatal("Config.BackoffSeed did not seed the retry ladder's jitter")
	}
	unseeded := newTestServer(t, Config{Side: 8})
	if unseeded.backoff.Jitter != nil {
		t.Fatal("zero BackoffSeed installed a jitter override")
	}
}
