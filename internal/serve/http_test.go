package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHandleSearchStatusMapping is the table-driven contract for /search's
// status codes, in particular that a client-cancelled request maps to the
// 4xx class (499/408) instead of polluting the 500 accounting, while
// server-side failures stay 5xx.
func TestHandleSearchStatusMapping(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		target string
		ctx    func() context.Context // nil = background
		setup  func(t *testing.T, s *Server)
		want   int
	}{
		{
			name:   "ok",
			cfg:    Config{Side: 8},
			target: "/search?key=3",
			want:   http.StatusOK,
		},
		{
			name:   "bad key",
			cfg:    Config{Side: 8},
			target: "/search?key=zebra",
			want:   http.StatusBadRequest,
		},
		{
			// A long linger guarantees the round is still assembling when the
			// already-cancelled request context is observed.
			name:   "client disconnect",
			cfg:    Config{Side: 8, Linger: 200 * time.Millisecond},
			target: "/search?key=3",
			ctx: func() context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx
			},
			want: StatusClientClosedRequest,
		},
		{
			name:   "client deadline",
			cfg:    Config{Side: 8, Linger: 200 * time.Millisecond},
			target: "/search?key=3",
			ctx: func() context.Context {
				ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
				_ = cancel // leaks into the case; the test server outlives it
				return ctx
			},
			want: http.StatusRequestTimeout,
		},
		{
			// Server-side failure (budget overrun with degradation off) must
			// stay a 500: only *client*-caused cancellation moves to 4xx.
			name:   "round failure",
			cfg:    Config{Side: 8, Budget: 3, DisableDegrade: true},
			target: "/search?key=3",
			want:   http.StatusInternalServerError,
		},
		{
			name:   "closed",
			cfg:    Config{Side: 8},
			target: "/search?key=3",
			setup: func(t *testing.T, s *Server) {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := s.Shutdown(ctx); err != nil {
					t.Fatalf("shutdown: %v", err)
				}
			},
			want: http.StatusServiceUnavailable,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.cfg)
			if tc.setup != nil {
				tc.setup(t, s)
			}
			req := httptest.NewRequest(http.MethodGet, tc.target, nil)
			if tc.ctx != nil {
				req = req.WithContext(tc.ctx())
			}
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("%s → %d, want %d (body %q)", tc.target, rec.Code, tc.want, rec.Body.String())
			}
		})
	}
}

// TestMetricsMeshRoundGauges pins the gauge fix: with every batch degraded to
// the oracle (deterministic budget overrun), queries_per_round and
// sim_steps_per_round must describe the mesh path only — not credit oracle
// answers with mesh rounds — while degraded throughput gets its own gauge.
func TestMetricsMeshRoundGauges(t *testing.T) {
	s := newTestServer(t, Config{Side: 8, Budget: 3, CanaryInterval: -1})
	for i := int64(0); i < 4; i++ {
		if _, err := s.Lookup(context.Background(), i); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Degraded == 0 || st.DegradedRounds == 0 {
		t.Fatalf("scenario did not degrade: %+v", st)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if v, ok := doc["degraded_queries_per_round"]; !ok || v.(float64) <= 0 {
		t.Fatalf("degraded_queries_per_round missing or zero: %v", doc["degraded_queries_per_round"])
	}
	// Mesh-path gauges: every mesh round here failed its budget (zero served
	// by the mesh), so if queries_per_round is present it must reflect only
	// failed-round accounting — never the oracle-served queries.
	meshRounds := st.Rounds - st.DegradedRounds
	if qpr, ok := doc["queries_per_round"]; ok {
		if meshRounds == 0 {
			t.Fatalf("queries_per_round %v emitted with zero mesh rounds", qpr)
		}
		if max := float64(st.Failed) / float64(meshRounds); qpr.(float64) > max {
			t.Fatalf("queries_per_round %v counts degraded answers (mesh max %v)", qpr, max)
		}
	}
	// The serving percentiles must ride the same document (Stats.Latency).
	serveDoc, ok := doc["serve"].(map[string]any)
	if !ok {
		t.Fatalf("metrics lacks serve stats: %v", doc)
	}
	lat, ok := serveDoc["latency"].(map[string]any)
	if !ok {
		t.Fatalf("stats lack latency summary: %v", serveDoc)
	}
	if lat["count"].(float64) < 4 || lat["p99_ns"].(float64) <= 0 {
		t.Fatalf("latency summary not populated: %v", lat)
	}
}
