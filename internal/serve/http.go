package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP surface:
//
//	GET /search?key=K   — one lookup; the response rides the query's round.
//	                      429 on ErrOverloaded (retryable), 503 after
//	                      Shutdown, 500 for a failed round (budget overrun,
//	                      cancellation), with the typed error's message.
//	GET /metrics        — serving counters, per-round step-budget headroom,
//	                      and, when a tracer is configured, its live span
//	                      snapshot.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseInt(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "serve: /search needs an integer ?key=", http.StatusBadRequest)
		return
	}
	res, err := s.Lookup(r.Context(), key)
	switch {
	case errors.Is(err, ErrOverloaded):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	doc := map[string]any{
		"serve":     st,
		"max_batch": s.maxBatch,
	}
	if st.Rounds > 0 {
		doc["queries_per_round"] = float64(st.Served+st.Failed) / float64(st.Rounds)
		doc["sim_steps_per_round"] = float64(st.SimSteps) / float64(st.Rounds)
	}
	if s.cfg.Tracer != nil {
		live := s.cfg.Tracer.Live()
		doc["trace"] = live
		if s.cfg.Budget > 0 {
			// Same semantics as meshbench -metrics: the span clock is a
			// low-water mark, so clamp remaining headroom at zero.
			headroom := s.cfg.Budget - live.StepClock
			if headroom < 0 {
				headroom = 0
			}
			doc["step_budget_headroom"] = headroom
		}
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
