package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// StatusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client disconnected before the round answered. There is no
// standard code for it, and 500 would charge a client disconnect to the
// server's error accounting.
const StatusClientClosedRequest = 499

// Handler returns the server's HTTP surface:
//
//	GET /search?key=K   — one lookup; the response rides the query's round.
//	                      429 on ErrOverloaded (retryable), 503 after
//	                      Shutdown — both with a Retry-After hint — and 500
//	                      for a failed round (only reachable with
//	                      DisableDegrade), with the typed error's message.
//	GET /healthz        — health state machine for load balancers: 200 while
//	                      healthy, 503 while degraded (circuit open, answers
//	                      come from the host oracle) or draining (lame-duck),
//	                      with the state and recovery counters as JSON.
//	GET /metrics        — serving counters (including the recovery ladder's),
//	                      health state, per-round step-budget headroom, and,
//	                      when a tracer is configured, its live span snapshot.
func (s *Instance) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// retryAfterSeconds renders RetryAfterHint for 429/503 responses: at least
// one second (the header's resolution), enough for several rounds to drain
// the admission queue or for a canary to close the circuit.
func (s *Instance) retryAfterSeconds() string {
	return RetryAfterSeconds(s.RetryAfterHint())
}

// RetryAfterSeconds renders a retry hint as a Retry-After header value,
// clamped up to the header's one-second resolution. Shared with the fleet
// handlers, whose hint is the minimum across healthy replicas.
func RetryAfterSeconds(hint time.Duration) string {
	secs := int64((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Instance) handleSearch(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseInt(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "serve: /search needs an integer ?key=", http.StatusBadRequest)
		return
	}
	res, err := s.Lookup(r.Context(), key)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case r.Context().Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// The *request's* context fired: the client disconnected (Canceled)
		// or its per-request deadline lapsed (DeadlineExceeded). That is a
		// client-side outcome, not a server error — map it to the 4xx class
		// so disconnect storms don't read as a 500 spike. Server-side
		// cancellation (drain aborting an in-flight round) keeps its own
		// context and still maps to 500 below.
		status := StatusClientClosedRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		http.Error(w, err.Error(), status)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

// handleHealthz is the load-balancer contract: 200 only while Healthy.
// Degraded (oracle answers, canaries probing) and LameDuck (draining) are
// both 503 — the server still answers /search correctly in the former, but
// a balancer with a healthy replica should prefer it.
func (s *Instance) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	st := s.Stats()
	doc := map[string]any{
		"health":         h.String(),
		"circuit_opens":  st.CircuitOpens,
		"circuit_closes": st.CircuitCloses,
		"canary_rounds":  st.CanaryRounds,
		"canary_fails":   st.CanaryFails,
		"degraded":       st.Degraded,
	}
	w.Header().Set("Content-Type", "application/json")
	if h != Healthy {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

func (s *Instance) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	doc := map[string]any{
		"serve":     st,
		"max_batch": s.maxBatch,
		"health":    st.Health,
		// Server shape, so a remote load-generator (loadgen.HTTPTarget) can
		// probe the key domain and replay-trace compatibility over HTTP.
		"side": s.cfg.Side,
		"keys": len(s.bt.Keys),
	}
	// Per-round gauges describe the *mesh* path only: an oracle-degraded
	// batch consumes no mesh round, so counting it would deflate
	// sim_steps_per_round and inflate queries_per_round under chaos.
	// Degraded throughput is reported as its own gauge instead. (Deltas of
	// counters loaded at slightly different instants can transiently go
	// negative under a concurrent snapshot; clamp like in_flight below.)
	meshRounds := st.Rounds - st.DegradedRounds
	meshServed := st.Served - st.Degraded
	if meshServed < 0 {
		meshServed = 0
	}
	if meshRounds > 0 {
		doc["queries_per_round"] = float64(meshServed+st.Failed) / float64(meshRounds)
		doc["sim_steps_per_round"] = float64(st.SimSteps) / float64(meshRounds)
	}
	if st.DegradedRounds > 0 {
		doc["degraded_queries_per_round"] = float64(st.Degraded) / float64(st.DegradedRounds)
	}
	if st.Served > 0 {
		doc["degraded_fraction"] = float64(st.Degraded) / float64(st.Served)
	}
	// Derived gauges subtract counters loaded at slightly different
	// instants, so clamp anything that could transiently go negative under
	// a concurrent snapshot (same class as the step_budget_headroom clamp).
	inflight := st.Accepted - st.Served - st.Failed
	if inflight < 0 {
		inflight = 0
	}
	doc["in_flight"] = inflight
	if recoveries := st.Recovered + st.DegradedRounds; recoveries > 0 {
		doc["recovered_rounds"] = recoveries
	}
	if s.cfg.Tracer != nil {
		live := s.cfg.Tracer.Live()
		doc["trace"] = live
		if s.cfg.Budget > 0 {
			// Same semantics as meshbench -metrics: the span clock is a
			// low-water mark, so clamp remaining headroom at zero.
			headroom := s.cfg.Budget - live.StepClock
			if headroom < 0 {
				headroom = 0
			}
			doc["step_budget_headroom"] = headroom
		}
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
