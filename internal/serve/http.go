package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/obs"
)

// StatusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client disconnected before the round answered. There is no
// standard code for it, and 500 would charge a client disconnect to the
// server's error accounting.
const StatusClientClosedRequest = 499

// DeadlineBudgetHeader carries the client's remaining deadline budget as a
// Go duration string (e.g. "250ms"): loadgen.HTTPTarget sets it from its
// per-query context, the /search handlers parse it into a server-side
// deadline, and every budget rung below — admission, linger, retry ladder,
// fleet failover — then sees the same budget the client is holding
// (DESIGN.md §3.11). Without it a remote server cannot shed doomed work:
// the client's deadline is invisible across the wire.
const DeadlineBudgetHeader = "X-Deadline-Budget"

// WithDeadlineBudget applies an incoming deadline-budget header to ctx.
// Absent or malformed headers leave ctx unchanged (the returned cancel is
// then a no-op but always non-nil, so callers can defer it unconditionally).
// Shared with the fleet handler.
func WithDeadlineBudget(ctx context.Context, r *http.Request) (context.Context, context.CancelFunc) {
	if v := r.Header.Get(DeadlineBudgetHeader); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return context.WithTimeout(ctx, d)
		}
	}
	return ctx, func() {}
}

// Handler returns the server's HTTP surface:
//
//	GET /search?key=K   — one lookup; the response rides the query's round.
//	                      ?kind= selects the query family (membership when
//	                      absent, so pre-kind clients keep working); each
//	                      kind has its own integer parameters:
//	                        membership  ?key=K
//	                        pointloc    ?x=X&y=Y
//	                        interval    ?lo=L&hi=H
//	                        linepoly    ?x=X&y=Y
//	                        tangent     ?dx=DX&dy=DY&dz=DZ
//	                      400 for an unknown kind, missing/malformed
//	                      parameters, or a kind this instance does not serve
//	                      (ErrKindNotServed — a client error: the instance
//	                      was configured without that structure).
//	                      429 on ErrOverloaded (retryable), 503 after
//	                      Shutdown — both with a Retry-After hint — and 500
//	                      for a failed round (only reachable with
//	                      DisableDegrade), with the typed error's message.
//	GET /healthz        — health state machine for load balancers: 200 while
//	                      healthy, 503 while degraded (circuit open, answers
//	                      come from the host oracle) or draining (lame-duck),
//	                      with the state and recovery counters as JSON.
//	GET /metrics        — serving counters (including the recovery ladder's),
//	                      health state, per-round step-budget headroom, and,
//	                      when a tracer is configured, its live span snapshot.
//	                      ?format=prometheus switches to the Prometheus text
//	                      exposition (stage histograms, outcome counters,
//	                      outcome-split latency, breaker state, SLO burn).
//	GET /debug/traces   — retained wall-clock request traces (requires
//	                      Config.Obs; see obs.Observer.DebugHandler).
func (s *Instance) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.obs != nil {
		mux.Handle("/debug/traces", s.obs.DebugHandler())
	} else {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "serve: request tracing disabled (Config.Obs is nil)", http.StatusNotFound)
		})
	}
	return mux
}

// traceCtx threads an incoming W3C traceparent into the lookup context —
// and mints a fresh trace ID when the request carries none (or a malformed
// one, which the spec says to ignore) — so the Lookup-begun trace adopts the
// wire ID and the response can echo it for client-side correlation.
func (s *Instance) traceCtx(w http.ResponseWriter, r *http.Request) context.Context {
	ctx := r.Context()
	if s.obs == nil {
		return ctx
	}
	id, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if err != nil {
		id = obs.NewTraceID()
	}
	w.Header().Set("Traceparent", id.Traceparent())
	return obs.ContextWithParent(ctx, id)
}

// retryAfterSeconds renders RetryAfterHint for 429/503 responses: at least
// one second (the header's resolution), enough for several rounds to drain
// the admission queue or for a canary to close the circuit.
func (s *Instance) retryAfterSeconds() string {
	return RetryAfterSeconds(s.RetryAfterHint())
}

// RetryAfterSeconds renders a retry hint as a Retry-After header value,
// clamped up to the header's one-second resolution. Shared with the fleet
// handlers, whose hint is the minimum across healthy replicas.
func RetryAfterSeconds(hint time.Duration) string {
	secs := int64((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// kindParams names each kind's /search query parameters, in Args order.
var kindParams = [NumKinds][]string{
	KindMembership: {"key"},
	KindPointLoc:   {"x", "y"},
	KindInterval:   {"lo", "hi"},
	KindLinePoly:   {"x", "y"},
	KindTangent:    {"dx", "dy", "dz"},
}

// ParseSearchArgs extracts one kind's typed arguments from a /search query
// string (shared with the fleet handler, which speaks the same contract).
func ParseSearchArgs(kind Kind, q url.Values) (Args, error) {
	var a Args
	for i, name := range kindParams[kind] {
		v, err := strconv.ParseInt(q.Get(name), 10, 64)
		if err != nil {
			return a, fmt.Errorf("serve: /search kind=%s needs an integer ?%s=", kind, name)
		}
		a[i] = v
	}
	return a, nil
}

func (s *Instance) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind, err := ParseKind(q.Get("kind"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	args, err := ParseSearchArgs(kind, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := WithDeadlineBudget(s.traceCtx(w, r), r)
	defer cancel()
	res, err := s.LookupKind(ctx, kind, args)
	switch {
	case errors.Is(err, ErrKindNotServed):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrBudgetExhausted):
		// Doomed work shed by a budget rung: the client's own deadline was
		// about to lapse, so 504 (the server gave up on its behalf) rather
		// than a 5xx that reads as a server fault.
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case r.Context().Err() == nil && errors.Is(err, context.DeadlineExceeded):
		// The budget-header deadline fired server-side while the client
		// connection is still open: same doomed-work class as the typed shed.
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case r.Context().Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// The *request's* context fired: the client disconnected (Canceled)
		// or its per-request deadline lapsed (DeadlineExceeded). That is a
		// client-side outcome, not a server error — map it to the 4xx class
		// so disconnect storms don't read as a 500 spike. Server-side
		// cancellation (drain aborting an in-flight round) keeps its own
		// context and still maps to 500 below.
		status := StatusClientClosedRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		http.Error(w, err.Error(), status)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

// handleHealthz is the load-balancer contract: 200 only while Healthy.
// Degraded (oracle answers, canaries probing) and LameDuck (draining) are
// both 503 — the server still answers /search correctly in the former, but
// a balancer with a healthy replica should prefer it.
func (s *Instance) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	st := s.Stats()
	doc := map[string]any{
		"health":         h.String(),
		"circuit_opens":  st.CircuitOpens,
		"circuit_closes": st.CircuitCloses,
		"canary_rounds":  st.CanaryRounds,
		"canary_fails":   st.CanaryFails,
		"degraded":       st.Degraded,
	}
	w.Header().Set("Content-Type", "application/json")
	if h != Healthy {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

func (s *Instance) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The Prometheus text exposition lives beside the JSON document, not in
	// place of it: loadgen.HTTPTarget and the PR 4-7 tooling scrape the JSON
	// shape, Prometheus scrapers ask for ?format=prometheus.
	if r.URL.Query().Get("format") == "prometheus" {
		s.promMetrics(w)
		return
	}
	st := s.Stats()
	doc := map[string]any{
		"serve":     st,
		"max_batch": s.maxBatch,
		"health":    st.Health,
		// Server shape, so a remote load-generator (loadgen.HTTPTarget) can
		// probe the key domain and replay-trace compatibility over HTTP.
		"side": s.cfg.Side,
		"keys": len(s.bt.Keys),
		// Enabled query kinds with their per-kind counters and latency, so a
		// mixed-workload client can discover what this instance serves.
		"kinds": st.Kinds,
	}
	// Per-round gauges describe the *mesh* path only: an oracle-degraded
	// batch consumes no mesh round, so counting it would deflate
	// sim_steps_per_round and inflate queries_per_round under chaos.
	// Degraded throughput is reported as its own gauge instead. (Deltas of
	// counters loaded at slightly different instants can transiently go
	// negative under a concurrent snapshot; clamp like in_flight below.)
	meshRounds := st.Rounds - st.DegradedRounds
	meshServed := st.Served - st.Degraded
	if meshServed < 0 {
		meshServed = 0
	}
	if meshRounds > 0 {
		doc["queries_per_round"] = float64(meshServed+st.Failed) / float64(meshRounds)
		doc["sim_steps_per_round"] = float64(st.SimSteps) / float64(meshRounds)
	}
	if st.DegradedRounds > 0 {
		doc["degraded_queries_per_round"] = float64(st.Degraded) / float64(st.DegradedRounds)
	}
	if st.Served > 0 {
		doc["degraded_fraction"] = float64(st.Degraded) / float64(st.Served)
	}
	// Derived gauges subtract counters loaded at slightly different
	// instants, so clamp anything that could transiently go negative under
	// a concurrent snapshot (same class as the step_budget_headroom clamp).
	inflight := st.Accepted - st.Served - st.Failed
	if inflight < 0 {
		inflight = 0
	}
	doc["in_flight"] = inflight
	if recoveries := st.Recovered + st.DegradedRounds; recoveries > 0 {
		doc["recovered_rounds"] = recoveries
	}
	if s.cfg.Tracer != nil {
		live := s.cfg.Tracer.Live()
		doc["trace"] = live
		if s.cfg.Budget > 0 {
			// Same semantics as meshbench -metrics: the span clock is a
			// low-water mark, so clamp remaining headroom at zero.
			headroom := s.cfg.Budget - live.StepClock
			if headroom < 0 {
				headroom = 0
			}
			doc["step_budget_headroom"] = headroom
		}
	}
	writeJSON(w, doc)
}

// promMetrics renders the instance's Prometheus text exposition. Counter
// families mirror the JSON Stats; histograms are the combined and
// outcome-split latency plus (with Config.Obs) the per-stage wall-clock
// decomposition and SLO burn gauges.
func (s *Instance) promMetrics(w http.ResponseWriter) {
	st := s.Stats()
	pw := obs.NewPromWriter()

	pw.Counter("meshserve_lookups_total", "Lookups by admission outcome.", float64(st.Accepted), "result", "accepted")
	pw.Counter("meshserve_lookups_total", "Lookups by admission outcome.", float64(st.Rejected), "result", "rejected")
	pw.Counter("meshserve_answers_total", "Answered lookups by serving path.", float64(st.Served-st.Degraded), "path", "mesh")
	pw.Counter("meshserve_answers_total", "Answered lookups by serving path.", float64(st.Degraded), "path", "oracle")
	pw.Counter("meshserve_answers_total", "Answered lookups by serving path.", float64(st.Failed), "path", "error")
	pw.Counter("meshserve_rounds_total", "Serving rounds by kind.", float64(st.Rounds-st.DegradedRounds), "kind", "mesh")
	pw.Counter("meshserve_rounds_total", "Serving rounds by kind.", float64(st.DegradedRounds), "kind", "degraded")
	pw.Counter("meshserve_rounds_total", "Serving rounds by kind.", float64(st.CanaryRounds), "kind", "canary")
	pw.Counter("meshserve_sim_steps_total", "Simulated mesh steps across all rounds.", float64(st.SimSteps))
	pw.Counter("meshserve_retries_total", "Audited re-executions of failed rounds.", float64(st.Retries))
	pw.Counter("meshserve_budget_shed_total", "Lookups shed with the deadline budget exhausted.", float64(st.BudgetShed))
	pw.Counter("meshserve_recovered_rounds_total", "Rounds that failed, then succeeded on a retry.", float64(st.Recovered))
	pw.Counter("meshserve_faults_total", "Round attempts failed, by fault class.", float64(st.FaultsAudit), "class", "audit")
	pw.Counter("meshserve_faults_total", "Round attempts failed, by fault class.", float64(st.FaultsBudget), "class", "budget")
	pw.Counter("meshserve_faults_total", "Round attempts failed, by fault class.", float64(st.FaultsCanceled), "class", "canceled")
	pw.Counter("meshserve_faults_total", "Round attempts failed, by fault class.", float64(st.FaultsPanic), "class", "panic")
	pw.Counter("meshserve_faults_total", "Round attempts failed, by fault class.", float64(st.FaultsOther), "class", "other")
	pw.Counter("meshserve_circuit_transitions_total", "Circuit breaker transitions.", float64(st.CircuitOpens), "to", "open")
	pw.Counter("meshserve_circuit_transitions_total", "Circuit breaker transitions.", float64(st.CircuitCloses), "to", "closed")

	// Breaker / health state as a one-hot gauge family plus a plain 0/1.
	h := s.Health()
	for _, state := range []Health{Healthy, Degraded, LameDuck} {
		v := 0.0
		if h == state {
			v = 1
		}
		pw.Gauge("meshserve_health_state", "Current health state (one-hot).", v, "state", state.String())
	}
	pw.Gauge("meshserve_circuit_open", "1 while the circuit breaker is open.", boolGauge(s.circuitOpen.Load()))
	pw.Gauge("meshserve_queue_depth", "Current admission-queue depth.", float64(s.QueueLen()))
	pw.Gauge("meshserve_queue_capacity", "Admission-queue capacity.", float64(s.QueueCap()))

	// Per-kind serving counters and latency: each query family runs its own
	// rounds on the shared mesh, so the split is what localizes a regression
	// to one structure instead of "the server got slower".
	for _, ks := range st.Kinds {
		pw.Counter("meshserve_kind_served_total", "Answered lookups by query kind.", float64(ks.Served), "kind", ks.Kind)
		pw.Counter("meshserve_kind_degraded_total", "Oracle-degraded answers by query kind.", float64(ks.Degraded), "kind", ks.Kind)
		pw.Counter("meshserve_kind_rounds_total", "Serving rounds by query kind.", float64(ks.Rounds), "kind", ks.Kind)
		pw.Counter("meshserve_kind_sim_steps_total", "Simulated mesh steps by query kind.", float64(ks.SimSteps), "kind", ks.Kind)
	}
	for _, k := range s.kinds {
		pw.Histogram("meshserve_kind_request_duration_seconds", "Answered-lookup latency by query kind.", s.LatencyByKind(k), "kind", k.String())
	}

	// End-to-end latency: combined for continuity, split by outcome so the
	// oracle fast path cannot pollute the mesh-served p99.
	lat := s.lat.Snapshot()
	pw.Histogram("meshserve_request_duration_seconds", "Answered-lookup latency, admission to response.", lat, "outcome", "all")
	pw.Histogram("meshserve_request_duration_seconds", "Answered-lookup latency, admission to response.", s.latMesh.Snapshot(), "outcome", "mesh")
	pw.Histogram("meshserve_request_duration_seconds", "Answered-lookup latency, admission to response.", s.latDegraded.Snapshot(), "outcome", "degraded")

	if s.obs != nil {
		pw.WriteObserver("meshserve", s.obs)
		pw.WriteLatencyBurn("meshserve", s.obs, lat)
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = w.Write(pw.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
