// Package trace records phase-attributed span trees keyed to the simulated
// step clock of the mesh (see DESIGN.md §3.4).
//
// A Tracer is attached with mesh.WithTracer. Algorithm code brackets its
// phases with Span:
//
//	defer trace.Span(v, "step3/B_%d", i)()
//
// Each span opens at the view's current critical-chain clock and closes with
// the steps — and the per-op mesh.Profile delta — charged in between. Across
// mesh.RunParallel the span tree follows the step clock's critical-path rule
// (only the max-cost submesh's spans merge into the parent), so well-nested
// instrumentation partitions the clock exactly: the exclusive ("self") steps
// of all phases in a traced run sum to Mesh.Steps().
//
// The collected runs export as Chrome trace-event JSON (chrome.go, loadable
// in Perfetto with the step clock as the timeline), as flat per-phase tables
// (table.go), and as a live snapshot for the meshbench -metrics endpoint.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/mesh"
)

// Node is one closed (or still-open) tracing span: a named interval of
// simulated parallel time along the critical chain, with the per-op
// decomposition of the steps charged inside it.
type Node struct {
	Name  string
	Start int64 // critical-chain clock at open
	End   int64 // clock at close (Start of a still-open span until closed)
	Prof  mesh.Profile
	Sub   []*Node

	startProf mesh.Profile
}

// Steps returns the span's duration in mesh steps.
func (s *Node) Steps() int64 { return s.End - s.Start }

// Run is one traced step-clock epoch: everything recorded on one mesh
// between New/ResetSteps and the next reset. Spans are the top-level spans
// in open order; End is the latest clock any span event observed, which
// equals Mesh.Steps() when the instrumentation covers the whole run.
type Run struct {
	Label string
	Geom  mesh.Geometry
	Spans []*Node
	End   int64

	// Seq is the run's stable 1-based attach sequence number (the "#n" in
	// the default label). It never changes after Attach, so it survives the
	// retain ring and is safe to embed in external records — the wall-clock
	// request traces of internal/obs cross-link their mesh-round spans to
	// step-clock runs by Seq.
	Seq int

	root *chain
}

// Tracer collects traced runs. It implements mesh.Tracer; one Tracer may be
// attached to any number of meshes (each New/ResetSteps starts a new Run).
// All collection state is guarded by one mutex: spans are phase-grained —
// orders of magnitude rarer than charged operations — so serializing them
// costs nothing measurable, and it makes the live snapshot (meshbench
// -metrics) safe to read while a run executes.
type Tracer struct {
	mu     sync.Mutex
	prefix string
	runs   []*Run

	retain       int   // max retained runs; 0 = unlimited
	base         int   // runs discarded from the front, ever
	droppedSteps int64 // sum of End over discarded runs, at discard time

	spans    int64  // spans opened, ever
	lastPath string // most recently opened span's path
	lastRun  *Run
}

// New returns an empty Tracer.
func New() *Tracer { return &Tracer{} }

// SetPrefix sets the label prefix for subsequently attached runs (the bench
// harness sets the experiment ID, so runs read "E2#3 128x128").
func (t *Tracer) SetPrefix(p string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.prefix = p
}

// Handle names one specific Run for post-attach mutation. The old TagRun
// tagged "the most recently attached run", which is a data race against
// meaning (not memory) under concurrency: when a canary round on one
// goroutine and a retry round on another attach back-to-back, the tag lands
// on whichever run attached last, not the caller's. A Handle is keyed to the
// run it was minted from, so concurrent taggers cannot cross.
//
// The zero Handle is valid and inert: every method is a no-op (or zero
// value), matching the nil-Tracer discipline of the rest of the seam.
type Handle struct {
	t   *Tracer
	run *Run
}

// HandleFor resolves the Run behind a mesh.TraceContext — the value
// Mesh.TraceRun returns right after New/ResetSteps. ok is false (and the
// handle inert) when tc is nil or not from this package's Tracer.
func HandleFor(tc mesh.TraceContext) (Handle, bool) {
	c, ok := tc.(*chain)
	if !ok || c == nil {
		return Handle{}, false
	}
	return Handle{t: c.t, run: c.run}, true
}

// Tag appends " [tag]" to the handled run's label. The serving layer tags
// its non-standard rounds — retry re-executions, canary probes — right after
// the per-round ResetSteps, so retained runs (and the live snapshot's
// open-span path, which is prefixed by the run label) say which rung of the
// recovery ladder produced them.
func (h Handle) Tag(tag string) {
	if h.run == nil {
		return
	}
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	h.run.Label += " [" + tag + "]"
}

// Label returns the handled run's current label ("" for the zero Handle).
func (h Handle) Label() string {
	if h.run == nil {
		return ""
	}
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	return h.run.Label
}

// Seq returns the handled run's stable sequence number (0 for the zero
// Handle — real sequence numbers start at 1).
func (h Handle) Seq() int {
	if h.run == nil {
		return 0
	}
	return h.run.Seq
}

// SetRetain bounds the number of retained runs to n (0 restores the default:
// retain everything). A serving mesh starts one run per round via ResetSteps,
// so an unbounded tracer grows without limit; with a retain bound the tracer
// keeps a ring of the most recent runs while NumRuns keeps counting every
// attach, so RunsSince marks taken earlier stay valid (they simply resolve to
// whatever of their window is still retained). Discarded runs keep their
// step total (as of discard time) in the live snapshot's TotalSteps.
func (t *Tracer) SetRetain(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retain = n
	t.trimLocked()
}

// trimLocked discards the oldest runs beyond the retain bound. Caller holds
// t.mu. Chains of a discarded run stay functional — the run is merely no
// longer listed, and its steps are folded into the dropped tally.
func (t *Tracer) trimLocked() {
	if t.retain <= 0 || len(t.runs) <= t.retain {
		return
	}
	k := len(t.runs) - t.retain
	for _, r := range t.runs[:k] {
		t.droppedSteps += r.End
	}
	t.base += k
	t.runs = append(t.runs[:0:0], t.runs[k:]...)
}

// Attach implements mesh.Tracer: it starts a new Run and returns its root
// chain. Called by mesh.New and Mesh.ResetSteps.
func (t *Tracer) Attach(g mesh.Geometry) mesh.TraceContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	seq := t.base + len(t.runs) + 1
	label := fmt.Sprintf("run#%d %dx%d", seq, g.Side, g.Side)
	if t.prefix != "" {
		label = t.prefix + " " + label
	}
	r := &Run{Label: label, Geom: g, Seq: seq}
	r.root = &chain{t: t, run: r}
	t.runs = append(t.runs, r)
	t.lastRun = r
	t.trimLocked()
	return r.root
}

// Runs returns the recorded runs, in attach order. Runs with no spans (a
// mesh built but reset before any instrumented code ran) are skipped.
func (t *Tracer) Runs() []*Run { return t.RunsSince(0) }

// RunsSince returns the runs attached at or after the given NumRuns() mark,
// skipping span-less ones — how the bench harness slices out the runs of a
// single experiment.
func (t *Tracer) RunsSince(mark int) []*Run {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mark < 0 || mark > t.base+len(t.runs) {
		mark = t.base + len(t.runs)
	}
	mark -= t.base // runs before the retain window resolve to its start
	if mark < 0 {
		mark = 0
	}
	out := make([]*Run, 0, len(t.runs)-mark)
	for _, r := range t.runs[mark:] {
		r.Spans = r.root.spans
		if len(r.Spans) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// NumRuns returns the number of runs attached so far (including span-less
// ones), for slicing Runs() per experiment.
func (t *Tracer) NumRuns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base + len(t.runs)
}

// chain is the mesh.TraceContext of one execution chain. spans/stack are
// only touched under t.mu; the ownership discipline of the mesh (one
// goroutine per chain, Fork/Merge at parallel boundaries) orders the
// operations within a chain.
type chain struct {
	t     *Tracer
	run   *Run
	spans []*Node // this chain's top-level spans, in open order
	stack []*Node // currently open spans
	fork  *Node   // parent's innermost open span at Fork time (nil at top level)
}

func (c *chain) OpenSpan(name string, at int64, prof mesh.Profile) {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	s := &Node{Name: name, Start: at, End: at, startProf: prof}
	if n := len(c.stack); n > 0 {
		top := c.stack[n-1]
		top.Sub = append(top.Sub, s)
	} else {
		c.spans = append(c.spans, s)
	}
	c.stack = append(c.stack, s)
	c.t.spans++
	c.t.lastPath = c.path()
	c.observe(at)
}

func (c *chain) CloseSpan(at int64, prof mesh.Profile) {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	n := len(c.stack)
	if n == 0 {
		// A closer outlived its chain (spans must close before the body
		// returns); drop it rather than corrupting another chain's tree.
		return
	}
	s := c.stack[n-1]
	c.stack = c.stack[:n-1]
	s.End = at
	s.Prof = prof.Sub(s.startProf)
	c.t.lastPath = c.path()
	c.observe(at)
}

func (c *chain) Fork() mesh.TraceContext {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	child := &chain{t: c.t, run: c.run}
	if n := len(c.stack); n > 0 {
		child.fork = c.stack[n-1]
	}
	return child
}

func (c *chain) Merge(child mesh.TraceContext) {
	cc := child.(*chain)
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if len(cc.spans) == 0 {
		return
	}
	// Splice at the fork point. The parent goroutine was blocked for the
	// whole child execution, so the fork-time open span is still the
	// innermost open span here and the splice lands in clock order.
	if cc.fork != nil {
		cc.fork.Sub = append(cc.fork.Sub, cc.spans...)
	} else {
		c.spans = append(c.spans, cc.spans...)
	}
	if e := cc.run.End; e > c.run.End {
		c.run.End = e
	}
}

// observe advances the run's end-of-clock watermark and the tracer's live
// state. Caller holds t.mu.
func (c *chain) observe(at int64) {
	if at > c.run.End {
		c.run.End = at
	}
	c.t.lastRun = c.run
}

// path renders the chain's open-span path for the live snapshot. Caller
// holds t.mu.
func (c *chain) path() string {
	p := c.run.Label
	if c.fork != nil {
		p += "/" + c.fork.Name
	}
	for _, s := range c.stack {
		p += "/" + s.Name
	}
	return p
}

// Span opens a span on the view's execution chain and returns its closer:
//
//	end := trace.Span(v, "lemma1/B_%d/phase1", i)
//	...
//	end()
//
// With no tracer installed it returns a shared no-op closer and never
// formats the name, so untraced call sites cost one branch.
func Span(v mesh.View, format string, args ...any) func() {
	if !v.Traced() {
		return nop
	}
	name := format
	if len(args) > 0 {
		name = fmt.Sprintf(format, args...)
	}
	return v.Span(name)
}

var nop = func() {}
