package trace

import (
	"encoding/json"
	"io"

	"repro/internal/mesh"
)

// Chrome trace-event export: one JSON object in the trace-event format that
// chrome://tracing and https://ui.perfetto.dev load directly. The timeline
// unit is the simulated step clock (one mesh step = one microsecond on the
// viewer's axis — wall time never appears), each traced run is one process,
// and every span is a complete ("X") event whose args carry the span's
// per-op profile delta.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChrome writes every recorded run as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	runs := t.Runs()
	out := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clock": "simulated mesh steps (1 step rendered as 1µs)",
		},
	}
	for i, r := range runs {
		pid := i + 1
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 1,
				Args: map[string]any{"name": r.Label}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 1,
				Args: map[string]any{"name": "critical chain"}})
		for _, s := range r.Spans {
			emitChrome(&out.TraceEvents, s, pid, r.End)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func emitChrome(evs *[]chromeEvent, s *Node, pid int, runEnd int64) {
	end := s.End
	if end < s.Start {
		end = runEnd // still-open span in an aborted run: extend to the watermark
	}
	dur := end - s.Start
	args := map[string]any{"steps": dur}
	for c := mesh.OpClass(0); c < mesh.NumOpClasses; c++ {
		if st := s.Prof.Ops[c]; st.Steps > 0 || st.Count > 0 {
			args[c.String()+"_steps"] = st.Steps
			args[c.String()+"_ops"] = st.Count
		}
	}
	*evs = append(*evs, chromeEvent{
		Name: s.Name, Ph: "X", Pid: pid, Tid: 1, Ts: s.Start, Dur: &dur, Args: args,
	})
	for _, sub := range s.Sub {
		emitChrome(evs, sub, pid, runEnd)
	}
}
