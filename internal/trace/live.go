package trace

// LiveSnapshot is a point-in-time view of a Tracer for the meshbench
// -metrics endpoint: how far the current run's step clock has advanced
// (as of the last span event — spans are phase-grained, so the clock is a
// low-water mark, not per-operation), and which phase the critical chain
// most recently entered.
type LiveSnapshot struct {
	Runs       int    `json:"runs_attached"`
	SpansOpen  int64  `json:"spans_opened"`
	Run        string `json:"current_run"`
	StepClock  int64  `json:"step_clock"`
	SpanPath   string `json:"span_path"`
	TotalSteps int64  `json:"total_steps_all_runs"`
}

// Live returns a consistent snapshot. Safe to call from any goroutine while
// runs execute.
func (t *Tracer) Live() LiveSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := LiveSnapshot{
		Runs:       t.base + len(t.runs),
		SpansOpen:  t.spans,
		SpanPath:   t.lastPath,
		TotalSteps: t.droppedSteps,
	}
	if t.lastRun != nil {
		s.Run = t.lastRun.Label
		s.StepClock = t.lastRun.End
	}
	for _, r := range t.runs {
		s.TotalSteps += r.End
	}
	return s
}
