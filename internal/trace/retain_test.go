package trace

import (
	"testing"

	"repro/internal/mesh"
)

// miniRun executes one tiny instrumented run on a fresh epoch of m.
func miniRun(m *mesh.Mesh) {
	v := m.Root()
	r := mesh.NewReg[int](m)
	defer Span(v, "round")()
	mesh.Scan(v, r, func(a, b int) int { return a + b })
}

// TestSetRetainBoundsRunsAndKeepsMarks pins the serving-mode contract: a
// retain bound caps the retained run list while NumRuns keeps counting every
// attach, marks taken before discarded runs still resolve, and the live
// snapshot's step total keeps the discarded runs' steps.
func TestSetRetainBoundsRunsAndKeepsMarks(t *testing.T) {
	tr := New()
	tr.SetRetain(3)
	m := mesh.New(4, mesh.WithTracer(tr))

	mark := tr.NumRuns() // 1: the attach from New
	if mark != 1 {
		t.Fatalf("NumRuns after New = %d, want 1", mark)
	}
	miniRun(m)
	perRun := m.Steps()
	for i := 0; i < 9; i++ {
		m.ResetSteps()
		miniRun(m)
	}

	if got := tr.NumRuns(); got != 10 {
		t.Fatalf("NumRuns = %d, want 10 (discards must not rewind the counter)", got)
	}
	runs := tr.Runs()
	if len(runs) != 3 {
		t.Fatalf("retained %d runs, want 3", len(runs))
	}
	if runs[len(runs)-1].Label != "run#10 4x4" {
		t.Fatalf("newest retained run is %q, want run#10 4x4", runs[len(runs)-1].Label)
	}
	// A mark that predates the retain window resolves to what is retained.
	if got := tr.RunsSince(mark); len(got) != 3 {
		t.Fatalf("RunsSince(pre-window mark) returned %d runs, want the 3 retained", len(got))
	}
	// A mark inside the window slices normally.
	if got := tr.RunsSince(9); len(got) != 1 {
		t.Fatalf("RunsSince(9) returned %d runs, want 1", len(got))
	}
	// All 10 runs' steps stay in the live total.
	if live := tr.Live(); live.TotalSteps != 10*perRun {
		t.Fatalf("live TotalSteps = %d, want %d (10 runs × %d steps)", live.TotalSteps, 10*perRun, perRun)
	} else if live.Runs != 10 {
		t.Fatalf("live Runs = %d, want 10", live.Runs)
	}
}
