package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mesh"
)

// tracedWorkload runs a fully-instrumented workload with two levels of
// nested RunParallel plus a RunSequential, so the span tree exercises every
// fork/merge path the mesh has.
func tracedWorkload(m *mesh.Mesh) {
	v := m.Root()
	r := mesh.NewReg[int64](m)
	done := Span(v, "workload")
	func() {
		defer Span(v, "setup")()
		mesh.Apply(v, r, func(i int, _ int64) int64 { return int64(i % 13) })
		mesh.Sort(v, r, func(a, b int64) bool { return a < b })
	}()
	func() {
		defer Span(v, "parallel")()
		v.RunParallel(v.Partition(2, 2), func(idx int, sub mesh.View) {
			defer Span(sub, "quadrant")()
			mesh.Sort(sub, r, func(a, b int64) bool { return a < b })
			sub.RunParallel(sub.Partition(2, 2), func(j int, ss mesh.View) {
				defer Span(ss, "tile")()
				mesh.Scan(ss, r, func(a, b int64) int64 { return a + b })
				if idx == 0 && j == 0 {
					// Extra work: make one inner tile the critical path.
					mesh.Sort(ss, r, func(a, b int64) bool { return a < b })
				}
			})
		})
	}()
	func() {
		defer Span(v, "sequential")()
		v.RunSequential(v.Partition(4, 1), func(_ int, sub mesh.View) {
			defer Span(sub, "stripe")()
			mesh.Scan(sub, r, func(a, b int64) int64 { return a + b })
		})
	}()
	done()
}

// checkTree verifies the structural invariant: children lie inside their
// parent's window, in non-overlapping clock order.
func checkTree(t *testing.T, s *Node, path string) {
	t.Helper()
	if s.End < s.Start {
		t.Errorf("%s/%s: End %d < Start %d", path, s.Name, s.End, s.Start)
	}
	cursor := s.Start
	var subSteps int64
	for _, c := range s.Sub {
		if c.Start < cursor {
			t.Errorf("%s/%s: child %s starts at %d before cursor %d (overlap)", path, s.Name, c.Name, c.Start, cursor)
		}
		if c.End > s.End {
			t.Errorf("%s/%s: child %s ends at %d after parent end %d", path, s.Name, c.Name, c.End, s.End)
		}
		cursor = c.End
		subSteps += c.Steps()
		checkTree(t, c, path+"/"+s.Name)
	}
	if subSteps > s.Steps() {
		t.Errorf("%s/%s: children total %d > span %d", path, s.Name, subSteps, s.Steps())
	}
	if prof := s.Prof.TotalSteps(); prof != s.Steps() {
		t.Errorf("%s/%s: profile delta %d steps != span duration %d", path, s.Name, prof, s.Steps())
	}
}

// The acceptance invariant: the root span covers exactly Mesh.Steps(), and
// child spans partition their parents along the critical path.
func TestSpanTotalsSumToStepsUnderNestedRunParallel(t *testing.T) {
	tr := New()
	m := mesh.New(16, mesh.WithTracer(tr))
	tracedWorkload(m)

	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.End != m.Steps() {
		t.Fatalf("run end %d != Mesh.Steps() %d", r.End, m.Steps())
	}
	if len(r.Spans) != 1 || r.Spans[0].Name != "workload" {
		t.Fatalf("top-level spans %v, want single workload span", r.Spans)
	}
	root := r.Spans[0]
	if root.Steps() != m.Steps() {
		t.Fatalf("root span %d steps != Mesh.Steps() %d", root.Steps(), m.Steps())
	}
	checkTree(t, root, "")

	// The phase table's self column partitions the clock exactly.
	var selfSum int64
	for _, row := range PhaseRows(r) {
		selfSum += row.Self
	}
	if selfSum != m.Steps() {
		t.Fatalf("phase self sum %d != Mesh.Steps() %d", selfSum, m.Steps())
	}
}

// Only the critical-path (max-cost) submesh's spans may survive a
// RunParallel merge; spans from cheaper submeshes are discarded.
func TestCriticalPathMergeDiscardsCheapSubmeshSpans(t *testing.T) {
	tr := New()
	m := mesh.New(16, mesh.WithTracer(tr))
	v := m.Root()
	r := mesh.NewReg[int64](m)
	v.RunParallel(v.Partition(2, 2), func(idx int, sub mesh.View) {
		if idx == 1 {
			defer Span(sub, "expensive")()
			mesh.Sort(sub, r, func(a, b int64) bool { return a < b })
		} else {
			defer Span(sub, "cheap")()
			sub.Charge(1)
		}
	})
	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	var names []string
	for _, s := range runs[0].Spans {
		names = append(names, s.Name)
	}
	if len(names) != 1 || names[0] != "expensive" {
		t.Fatalf("surviving spans %v, want [expensive]", names)
	}
	if got := runs[0].Spans[0].Steps(); got != m.Steps() {
		t.Fatalf("surviving span %d steps, want Steps() %d", got, m.Steps())
	}
}

// ResetSteps starts a fresh run: spans before the reset stay with the old
// clock, and the new run's spans start from zero again.
func TestResetStepsStartsFreshRun(t *testing.T) {
	tr := New()
	m := mesh.New(8, mesh.WithTracer(tr))
	v := m.Root()
	func() {
		defer Span(v, "before")()
		v.Charge(7)
	}()
	m.ResetSteps()
	v = m.Root() // the old view's sink was replaced by the reset
	func() {
		defer Span(v, "after")()
		v.Charge(3)
	}()
	runs := tr.Runs()
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if runs[0].Spans[0].Name != "before" || runs[0].End != 7 {
		t.Fatalf("run 1: %s end %d, want before/7", runs[0].Spans[0].Name, runs[0].End)
	}
	if runs[1].Spans[0].Name != "after" || runs[1].End != 3 || runs[1].Spans[0].Start != 0 {
		t.Fatalf("run 2: %+v, want after starting at 0 ending at 3", runs[1].Spans[0])
	}
}

// A Handle obtained from the mesh's current run must tag that run and only
// that run — the serving layer's marker for retry and canary rounds — and
// survive a following reset.
func TestHandleTagsItsOwnRun(t *testing.T) {
	tr := New()
	m := mesh.New(8, mesh.WithTracer(tr))
	v := m.Root()
	func() {
		defer Span(v, "round")()
		v.Charge(2)
	}()
	m.ResetSteps()
	h, ok := HandleFor(m.TraceRun())
	if !ok {
		t.Fatal("HandleFor failed on a traced mesh")
	}
	h.Tag("retry 1 audited")
	v = m.Root()
	func() {
		defer Span(v, "round")()
		v.Charge(2)
	}()
	m.ResetSteps() // a later attach must not steal the tag target
	runs := tr.Runs()
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if strings.Contains(runs[0].Label, "[retry 1 audited]") {
		t.Fatalf("tag leaked onto the pre-reset run: %q", runs[0].Label)
	}
	if !strings.Contains(runs[1].Label, "[retry 1 audited]") {
		t.Fatalf("tag missing from the tagged run: %q", runs[1].Label)
	}
	if h.Seq() != 2 || runs[1].Seq != 2 {
		t.Fatalf("handle seq %d / run seq %d, want 2", h.Seq(), runs[1].Seq)
	}
	if h.Label() != runs[1].Label {
		t.Fatalf("handle label %q != run label %q", h.Label(), runs[1].Label)
	}
}

// The zero Handle (no tracer installed) must be inert, and HandleFor must
// reject foreign contexts.
func TestHandleZeroValueInert(t *testing.T) {
	var h Handle
	h.Tag("ignored") // must not panic
	if h.Seq() != 0 || h.Label() != "" {
		t.Fatalf("zero handle leaked state: seq=%d label=%q", h.Seq(), h.Label())
	}
	if _, ok := HandleFor(nil); ok {
		t.Fatal("HandleFor(nil) succeeded")
	}
}

// The race the Handle API exists to kill: two goroutines tagging the runs of
// two meshes that share one Tracer, interleaved with fresh attaches. Under
// the old most-recently-attached heuristic the tags land on whichever run
// attached last (and -race flags the label append); with handles each tag
// must land on its own goroutine's run. Run with -race.
func TestHandleTagConcurrentRuns(t *testing.T) {
	tr := New()
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := mesh.New(8, mesh.WithTracer(tr))
			for i := 0; i < rounds; i++ {
				m.ResetSteps()
				h, ok := HandleFor(m.TraceRun())
				if !ok {
					t.Error("HandleFor failed")
					return
				}
				tag := fmt.Sprintf("g%d-%d", g, i)
				h.Tag(tag)
				v := m.Root()
				func() {
					defer Span(v, "round")()
					v.Charge(1)
				}()
				if lbl := h.Label(); !strings.Contains(lbl, "["+tag+"]") {
					t.Errorf("tag %q landed elsewhere: run label %q", tag, lbl)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every tagged run retained exactly its own tag.
	tagged := 0
	for _, r := range tr.Runs() {
		if n := strings.Count(r.Label, "["); n > 1 {
			t.Fatalf("run %q carries %d tags, want ≤1", r.Label, n)
		} else if n == 1 {
			tagged++
		}
	}
	if tagged != 2*rounds {
		t.Fatalf("%d tagged runs retained, want %d", tagged, 2*rounds)
	}
}

// The Chrome export must be valid JSON in trace-event format with one
// complete event per span and durations in step time.
func TestWriteChromeProducesValidTraceEvents(t *testing.T) {
	tr := New()
	m := mesh.New(16, mesh.WithTracer(tr))
	tracedWorkload(m)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   *int64 `json:"ts"`
			Dur  *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, meta int
	var rootDur int64
	for _, e := range decoded.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Dur == nil || e.Ts == nil {
				t.Fatalf("complete event %q missing ts/dur", e.Name)
			}
			if e.Name == "workload" {
				rootDur = *e.Dur
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if complete == 0 || meta == 0 {
		t.Fatalf("complete=%d meta=%d, want both > 0", complete, meta)
	}
	if rootDur != m.Steps() {
		t.Fatalf("workload event dur %d != Steps() %d", rootDur, m.Steps())
	}
}

func TestPhaseTableRendering(t *testing.T) {
	tr := New()
	tr.SetPrefix("T1")
	m := mesh.New(16, mesh.WithTracer(tr))
	tracedWorkload(m)
	var buf bytes.Buffer
	WritePhaseTable(&buf, tr.Runs())
	out := buf.String()
	for _, want := range []string{"T1 run#1 16x16", "workload", "workload/parallel/quadrant", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	WritePhaseCSV(&csvBuf, tr.Runs())
	if !strings.Contains(csvBuf.String(), "run,phase,calls,steps,self,top_op") {
		t.Errorf("phase CSV missing header:\n%s", csvBuf.String())
	}
}

// The live snapshot must be readable mid-run and reflect the span path.
func TestLiveSnapshot(t *testing.T) {
	tr := New()
	m := mesh.New(8, mesh.WithTracer(tr))
	v := m.Root()
	end := Span(v, "outer")
	v.Charge(5)
	inner := Span(v, "inner")
	live := tr.Live()
	if live.Runs != 1 || live.SpansOpen != 2 {
		t.Fatalf("live %+v, want 1 run / 2 spans", live)
	}
	if !strings.HasSuffix(live.SpanPath, "outer/inner") {
		t.Fatalf("span path %q, want .../outer/inner", live.SpanPath)
	}
	if live.StepClock != 5 {
		t.Fatalf("step clock %d, want 5", live.StepClock)
	}
	inner()
	end()
	if got := tr.Live().StepClock; got != m.Steps() {
		t.Fatalf("final clock %d != Steps() %d", got, m.Steps())
	}
}
