package trace

import (
	"fmt"
	"io"

	"repro/internal/mesh"
)

// Flat per-phase tables: the span tree of one run aggregated by phase path.
// Repeated instances of the same path (the B_i loop, every log-phase) fold
// into one row. Each row carries inclusive steps and exclusive "self" steps
// (inclusive minus the row's sub-phases); because the span tree partitions
// the critical chain, the self column of a fully-instrumented run sums
// exactly to the run's total steps — the empirical form of the paper's
// decomposition theorems.

// PhaseRow is one aggregated phase of a run.
type PhaseRow struct {
	Path  string // span names joined with "/", root-relative
	Depth int
	Calls int64
	Steps int64 // inclusive: Σ span durations
	Self  int64 // exclusive: inclusive − Σ sub-span durations
	Prof  mesh.Profile
}

// PhaseRows flattens a run's span tree into aggregated rows in first-visit
// (depth-first) order. A final "(untraced)" row accounts for any clock the
// top-level spans do not cover, so the Self column always sums to r.End.
func PhaseRows(r *Run) []PhaseRow {
	idx := map[string]int{}
	var rows []PhaseRow
	var walk func(prefix string, depth int, spans []*Node) int64
	walk = func(prefix string, depth int, spans []*Node) int64 {
		var covered int64
		for _, s := range spans {
			path := s.Name
			if prefix != "" {
				path = prefix + "/" + s.Name
			}
			i, ok := idx[path]
			if !ok {
				i = len(rows)
				idx[path] = i
				rows = append(rows, PhaseRow{Path: path, Depth: depth})
			}
			dur := s.Steps()
			covered += dur
			sub := walk(path, depth+1, s.Sub)
			rows[i].Calls++
			rows[i].Steps += dur
			rows[i].Self += dur - sub
			rows[i].Prof.Add(s.Prof)
		}
		return covered
	}
	covered := walk("", 0, r.Spans)
	if gap := r.End - covered; gap > 0 {
		rows = append(rows, PhaseRow{Path: "(untraced)", Calls: 0, Steps: gap, Self: gap})
	}
	return rows
}

// WritePhaseTable renders each run's aggregated phase table as aligned
// text. The self column partitions the run: its rows sum to the total.
func WritePhaseTable(w io.Writer, runs []*Run) {
	for _, r := range runs {
		rows := PhaseRows(r)
		fmt.Fprintf(w, "\nphases — %s (total %d steps; self column sums to total)\n", r.Label, r.End)
		wPath := len("phase")
		for _, row := range rows {
			if n := len(row.Path); n > wPath {
				wPath = n
			}
		}
		fmt.Fprintf(w, "  %-*s  %7s  %12s  %12s  %6s  %s\n", wPath, "phase", "calls", "steps", "self", "self%", "top op")
		var selfSum int64
		for _, row := range rows {
			selfSum += row.Self
			share := 0.0
			if r.End > 0 {
				share = 100 * float64(row.Self) / float64(r.End)
			}
			top := ""
			if c, s := row.Prof.Dominant(); s > 0 {
				top = c.String()
			}
			fmt.Fprintf(w, "  %-*s  %7d  %12d  %12d  %5.1f%%  %s\n",
				wPath, row.Path, row.Calls, row.Steps, row.Self, share, top)
		}
		fmt.Fprintf(w, "  %-*s  %7s  %12s  %12d  %5.1f%%\n", wPath, "TOTAL", "", "", selfSum, 100.0)
	}
}

// WritePhaseCSV renders the same rows as RFC-4180 CSV:
// run,phase,calls,steps,self,top_op.
func WritePhaseCSV(w io.Writer, runs []*Run) {
	fmt.Fprintf(w, "run,phase,calls,steps,self,top_op\n")
	for _, r := range runs {
		for _, row := range PhaseRows(r) {
			top := ""
			if c, s := row.Prof.Dominant(); s > 0 {
				top = c.String()
			}
			fmt.Fprintf(w, "%q,%q,%d,%d,%d,%s\n", r.Label, row.Path, row.Calls, row.Steps, row.Self, top)
		}
		fmt.Fprintf(w, "%q,TOTAL,,%d,%d,\n", r.Label, r.End, r.End)
	}
}
